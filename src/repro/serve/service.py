"""Warm-start batch serving for counterfactual explanations.

:class:`ExplanationService` is the request-facing entry point of the
serving subsystem: it wraps a trained pipeline (freshly trained or
rebuilt from an :class:`~repro.serve.store.ArtifactStore`), answers
``explain_batch`` requests through the graph-free fast path, memoises
per-row results in an LRU cache keyed on the pipeline fingerprint, and
coalesces queued single-row requests into one vectorized
``generate_candidates`` sweep.

The service is strategy-agnostic: pass any fitted
:class:`repro.engine.CFStrategy` (a baseline, or a diverse-candidate
core strategy) and batches route through the shared
:class:`repro.engine.EngineRunner` instead of the core generator.  Cache
keys carry a strategy fingerprint, so results from different strategies
never collide.

It is also density-aware: pass a fitted
:class:`repro.density.DensityModel` (or warm-start one straight from
the artifact store's persisted density state) and cache-miss rows are
selected by the Figure 3 proximity+density score through the engine
runner — the paper's density criterion survives a process restart.
Cache keys additionally carry the density fingerprint.

And it is causality-aware: pass a fitted
:class:`repro.causal.CausalModel` (or warm-start one from the store's
persisted causal state) and every cache-miss batch is causally repaired
by the engine runner before validity/feasibility — the paper's first
pillar survives a process restart too.  Cache keys additionally carry
the causal fingerprint.
"""

from __future__ import annotations

import threading
import warnings

import numpy as np

from ..core.result import CFBatchResult
from ..core.selection import generate_candidates
from ..engine import EngineRunner
from ..utils.validation import check_encoded_rows
from .cache import LRUResultCache

#: Overlay kinds :meth:`ExplanationService.warm_start` hosts, in the
#: order the service constructor takes them.
_SERVICE_OVERLAYS = ("density", "causal", "ensemble")

__all__ = ["ExplainTicket", "ExplanationService", "PendingTicketError"]


class PendingTicketError(RuntimeError):
    """A ticket's result was read before the owning service flushed it.

    Raised by :meth:`ExplainTicket.result` on a never-flushed ticket —
    the fix is almost always a missing ``service.flush()`` call between
    ``submit`` and ``result``.  The async serving front
    (:class:`repro.serve.AsyncExplanationService`) raises the same error
    when an awaited request times out before its coalesced batch was
    flushed, so both serving styles report the one failure mode with the
    one exception type.
    """


class ExplainTicket:
    """Pending single-row explanation, resolved by the next flush.

    Attributes
    ----------
    row:
        The encoded input row, shape (d,).
    desired:
        Requested target class, or ``None`` for "flip the prediction".
    """

    def __init__(self, row, desired):
        self.row = row
        self.desired = desired
        self._result = None

    @property
    def ready(self):
        """Whether the owning service has flushed this ticket."""
        return self._result is not None

    def result(self):
        """The resolved result dict; raises until the service flushes."""
        if self._result is None:
            raise PendingTicketError(
                "ticket is not resolved yet: the owning service has not "
                "flushed it — call service.flush() after submitting")
        return self._result


class ExplanationService:
    """Serve batched counterfactual explanations from a trained pipeline.

    Parameters
    ----------
    pipeline:
        A :class:`~repro.serve.pipeline.TrainedPipeline` (cold-trained or
        loaded from a store).
    cache_size:
        LRU result-cache capacity in rows; ``0`` disables caching.
    strategy:
        Optional fitted :class:`repro.engine.CFStrategy`.  When given,
        cache-miss rows are explained by that strategy through the shared
        engine runner instead of the pipeline's core generator.
    density:
        Optional fitted :class:`repro.density.DensityModel`.  When
        given, the engine runner hosts it: multi-candidate batches are
        selected density-aware, and the core path (no ``strategy``)
        switches to a diverse ``CoreCFStrategy`` sweep of
        ``density_candidates`` latent perturbations per row so there is
        a candidate set for the density criterion to act on.
    density_weight:
        Trade-off ``lambda`` of the density-aware selection score.
    density_candidates:
        Candidates per row the core path proposes when ``density`` is
        set (ignored with an explicit ``strategy``).
    causal:
        Optional fitted :class:`repro.causal.CausalModel`.  When given,
        the engine runner hosts it: every cache-miss batch is causally
        repaired between immutable projection and the feasibility
        kernel, whichever strategy serves it.
    ensemble:
        Optional trained :class:`repro.models.BlackBoxEnsemble`.  When
        given, the engine runner hosts it: every cache-miss batch is
        scored against all K member models in one fused pass and
        quorum-robust candidates win selection.  Cache keys additionally
        carry the ensemble fingerprint.
    robust_quorum:
        Member-agreement fraction a candidate needs to count as robust.
    engine:
        Execution path for cache-miss batches: ``"staged"`` (default)
        runs the classic stage-by-stage :meth:`EngineRunner.run`;
        ``"plan"`` compiles the served chain into an
        :class:`~repro.engine.plan.ExplainPlan` once and replays it
        fused (recompiled automatically when the runner or strategy is
        re-pointed).  Plan serving always routes through the engine
        runner, and the plan fingerprint joins the cache key.
    plan_backend:
        Backend name (or instance) the ``"plan"`` engine compiles onto;
        the default ``"numpy"`` backend is bit-identical to staged
        serving.
    """

    def __init__(
        self,
        pipeline,
        cache_size=4096,
        strategy=None,
        density=None,
        density_weight=1.0,
        density_candidates=8,
        causal=None,
        ensemble=None,
        robust_quorum=0.5,
        engine="staged",
        plan_backend="numpy",
    ):
        if engine not in ("staged", "plan"):
            raise ValueError(f'engine must be "staged" or "plan", got {engine!r}')
        self.pipeline = pipeline
        self.explainer = pipeline.explainer
        self.strategy = strategy
        self.density = density
        self.density_weight = float(density_weight)
        self.density_candidates = int(density_candidates)
        self.causal = causal
        self.ensemble = ensemble
        self.robust_quorum = float(robust_quorum)
        self.engine = engine
        self.plan_backend = plan_backend
        self.fingerprint = pipeline.fingerprint
        #: kind -> (model identity, raw fingerprint) memo behind the
        #: ``*_fingerprint`` properties; see :meth:`_overlay_fingerprint`.
        self._fingerprint_memo = {}
        self._runner = None
        self._core_strategy = None
        self._compiled_plan = None
        self.cache = LRUResultCache(cache_size)
        self._pending = []
        #: Guards the pending-ticket queue and the serving counters so a
        #: flush racing an explain_batch from another thread can neither
        #: lose tickets nor tear the counter snapshot ``stats`` returns
        #: (the cache itself is independently lock-protected).
        self._lock = threading.RLock()
        self.batches_served = 0
        self.rows_served = 0
        self.flushes = 0
        self.rows_coalesced = 0
        #: Counters of the last :meth:`migrate_cache` call (None before).
        self.last_migration = None

    # -- construction --------------------------------------------------------
    @classmethod
    def warm_start(
        cls,
        store,
        name,
        expected_fingerprint=None,
        cache_size=4096,
        strategy=None,
        overlays=None,
        density=None,
        density_weight=1.0,
        density_candidates=8,
        causal=None,
        ensemble=None,
        robust_quorum=0.5,
        on_stale="raise",
        migrate_from=None,
        engine="staged",
        plan_backend="numpy",
        density_backend=None,
    ):
        """Build a service from a stored artifact without any training.

        ``strategy`` serves a non-core strategy on top of the warm-started
        pipeline (the store persists the shared black-box and CF-VAE; the
        strategy itself arrives fitted).

        ``overlays`` is ONE spec for every hosted model overlay — a dict
        mapping an overlay kind (``"density"``, ``"causal"``,
        ``"ensemble"``) to either an already-fitted model or the string
        ``"store"``, which rebuilds the state persisted with the
        artifact through the store's generic
        :meth:`repro.serve.ArtifactStore.load_overlay` (the warm-started
        CF-VAE is re-attached for latent density estimators, the
        warm-started encoder for causal models)::

            ExplanationService.warm_start(
                store, name,
                overlays={"density": "store", "causal": causal_model},
            )

        The per-kind keyword arguments (``density=``, ``causal=``,
        ``ensemble=``) are deprecated aliases folded into ``overlays``;
        passing a kind both ways is an error.  Raises the store's
        ``ArtifactError``/``StaleArtifactError`` when the artifact is
        missing, corrupted or stale.

        ``on_stale`` controls the rollover behaviour when
        ``expected_fingerprint`` no longer matches the stored artifact
        (the model was retrained under the service's feet):

        * ``"raise"`` (default) — propagate :class:`StaleArtifactError`
          cold, the strict historical contract;
        * ``"migrate"`` — warm-start from the artifact the store
          *currently* holds instead, then (when ``migrate_from`` is an
          old :class:`ExplanationService`) re-validate its cached
          explanations against the new model in one batched pass and
          keep the survivors (:meth:`migrate_cache`).  Internal
          corruption — a bad checksum, a schema/config drift within the
          artifact itself — still raises: migration only forgives the
          *requested-pipeline* mismatch that a rollover produces.

        ``migrate_from`` may also be combined with a successful strict
        load to carry a previous service's still-valid cache across a
        process restart.

        ``density_backend`` re-indexes the resolved density overlay on
        another neighbour backend (:data:`repro.density.DENSITY_BACKENDS`)
        before serving — the way a store-persisted exact estimator is
        served ANN-backed over a 100k+ reference without re-persisting.
        Requires a density overlay; ``None`` keeps the overlay's own
        backend.
        """
        if on_stale not in ("raise", "migrate"):
            raise ValueError(
                f'on_stale must be "raise" or "migrate", got {on_stale!r}')
        from .store import StaleArtifactError

        overlays = dict(overlays) if overlays else {}
        unknown = sorted(set(overlays) - set(_SERVICE_OVERLAYS))
        if unknown:
            raise ValueError(
                f"unknown overlay kinds {unknown} in overlays; "
                f"the service hosts {list(_SERVICE_OVERLAYS)}")
        for kind, legacy in (("density", density), ("causal", causal),
                             ("ensemble", ensemble)):
            if legacy is None:
                continue
            if kind in overlays:
                raise ValueError(
                    f"overlay {kind!r} passed both as a keyword argument and "
                    f"in overlays; use overlays only")
            warnings.warn(
                f"warm_start({kind}=...) is deprecated; pass "
                f"overlays={{{kind!r}: ...}} instead",
                DeprecationWarning,
                stacklevel=2,
            )
            overlays[kind] = legacy

        try:
            pipeline = store.load(name, expected_fingerprint=expected_fingerprint)
        except StaleArtifactError as error:
            if (
                on_stale != "migrate"
                or expected_fingerprint is None
                or error.expected != expected_fingerprint
            ):
                raise
            # the artifact rolled past the requested pipeline: serve what
            # the store holds now (this load still enforces the artifact's
            # own internal consistency) and salvage the old cache below
            pipeline = store.load(name)
        for kind, value in overlays.items():
            if value == "store":
                overlays[kind] = store.load_overlay(
                    name,
                    kind,
                    vae=pipeline.explainer.generator.vae,
                    encoder=pipeline.encoder,
                )
        if density_backend is not None:
            if overlays.get("density") is None:
                raise ValueError(
                    "density_backend requires a density overlay; pass "
                    'overlays={"density": "store"} or a fitted estimator')
            overlays["density"] = overlays["density"].with_backend(density_backend)
        service = cls(
            pipeline,
            cache_size=cache_size,
            strategy=strategy,
            density=overlays.get("density"),
            density_weight=density_weight,
            density_candidates=density_candidates,
            causal=overlays.get("causal"),
            ensemble=overlays.get("ensemble"),
            robust_quorum=robust_quorum,
            engine=engine,
            plan_backend=plan_backend,
        )
        if migrate_from is not None:
            service.migrate_cache(migrate_from)
        return service

    @property
    def runner(self):
        """Shared engine runner over the pipeline (built lazily).

        Rebuilt when :attr:`density`, :attr:`density_weight`,
        :attr:`causal`, :attr:`ensemble` or :attr:`robust_quorum` is
        re-pointed so the hosted model configuration always matches the
        one the cache keys are derived from.
        """
        if (
            self._runner is None
            or self._runner.density is not self.density
            or self._runner.density_weight != self.density_weight
            or self._runner.causal is not self.causal
            or self._runner.ensemble is not self.ensemble
            or self._runner.robust_quorum != self.robust_quorum
        ):
            self._runner = EngineRunner(
                self.encoder,
                self.explainer.blackbox,
                density=self.density,
                density_weight=self.density_weight,
                causal=self.causal,
                ensemble=self.ensemble,
                robust_quorum=self.robust_quorum,
            )
        return self._runner

    @property
    def plan(self):
        """Compiled :class:`ExplainPlan` serving cache misses (plan engine only).

        ``None`` on the staged engine.  Recompiled whenever the runner
        is rebuilt or the served strategy is re-pointed, so the replayed
        chain always matches the configuration the cache keys carry.
        """
        if self.engine != "plan":
            return None
        runner = self.runner
        strategy = self.strategy or self.core_strategy
        if (
            self._compiled_plan is None
            or self._compiled_plan.runner is not runner
            or self._compiled_plan.strategy is not strategy
        ):
            self._compiled_plan = runner.compile(strategy, backend=self.plan_backend)
        return self._compiled_plan

    @property
    def core_strategy(self):
        """Core strategy used when a model is served without a strategy.

        Density-aware serving proposes a diverse latent sweep of
        ``density_candidates`` so the Figure 3 criterion has candidates
        to rank; causal-only serving keeps the one-shot deterministic
        decode (repair needs no diversity).
        """
        wanted = self.density_candidates if self.density is not None else 1
        if self._core_strategy is None or self._core_strategy.n_candidates != wanted:
            from ..engine import CoreCFStrategy

            self._core_strategy = CoreCFStrategy(self.explainer, n_candidates=wanted)
        return self._core_strategy

    @property
    def encoder(self):
        """The pipeline's fitted tabular encoder."""
        return self.explainer.encoder

    @property
    def dataset(self):
        """Name of the dataset the pipeline was trained on."""
        return self.pipeline.dataset

    # -- validation ----------------------------------------------------------
    def _check_rows(self, rows, name="rows"):
        """Validate a request matrix against the trained schema."""
        return check_encoded_rows(rows, self.encoder, name)

    def _resolve_desired(self, rows, desired):
        if desired is None:
            return 1 - self.explainer.blackbox.predict(rows)
        desired = np.asarray(desired, dtype=int).reshape(-1)
        if len(desired) != len(rows):
            raise ValueError(f"desired ({len(desired)}) and rows ({len(rows)}) counts differ")
        return desired

    def _overlay_fingerprint(self, kind, obj, default, suffix=""):
        """Identity-memoised fingerprint of one served model slot.

        The one recompute rule behind every ``*_fingerprint`` property:
        the fingerprint is recomputed when the slot is re-pointed at a
        different object (identity comparison), so switching models can
        never serve stale cross-model cache hits — while an in-place
        refit of the hosted instance is *not* detected (attach a freshly
        fitted model instead).  ``suffix`` tags cache-relevant serving
        parameters (selection weight, robustness quorum) onto a hosted
        model's fingerprint; slots without a model report ``default``
        untagged.
        """
        memo = self._fingerprint_memo.get(kind)
        if memo is None or memo[0] is not obj:
            value = obj.fingerprint() if obj is not None else default
            self._fingerprint_memo[kind] = (obj, value)
        else:
            value = memo[1]
        if obj is None:
            return value
        return f"{value}{suffix}"

    @property
    def strategy_fingerprint(self):
        """Fingerprint of the currently served strategy (``"core"`` if none)."""
        return self._overlay_fingerprint("strategy", self.strategy, "core")

    @property
    def density_fingerprint(self):
        """Fingerprint of the served density configuration.

        ``"none"`` without a model; otherwise the estimator fingerprint
        tagged with the selection weight (the weight changes which
        candidate wins, so it is cache-relevant).
        """
        return self._overlay_fingerprint(
            "density", self.density, "none", suffix=f"@w{self.density_weight}")

    @property
    def causal_fingerprint(self):
        """Fingerprint of the served causal configuration (``"none"`` if none)."""
        return self._overlay_fingerprint("causal", self.causal, "none")

    @property
    def ensemble_fingerprint(self):
        """Fingerprint of the served ensemble configuration.

        ``"none"`` without an ensemble; otherwise the ensemble
        fingerprint tagged with the quorum (the quorum changes which
        candidate wins selection, so it is cache-relevant).
        """
        return self._overlay_fingerprint(
            "ensemble", self.ensemble, "none", suffix=f"@q{self.robust_quorum}")

    @property
    def engine_fingerprint(self):
        """Cache-key component of the execution path.

        ``"staged"`` on the classic path; on the plan engine the
        compiled plan's own fingerprint (which folds in the backend and
        the traced chain), so plan-served rows never collide with
        staged-served ones and a backend switch invalidates cleanly.
        """
        plan = self.plan
        return "staged" if plan is None else f"plan-{plan.fingerprint()}"

    @property
    def _hosts_model(self):
        """Whether cache-miss rows must route through the engine runner."""
        return (
            self.strategy is not None
            or self.density is not None
            or self.causal is not None
            or self.ensemble is not None
            or self.engine == "plan"
        )

    @property
    def cache_fingerprint(self):
        """Composite cache-key component:
        ``pipeline:engine:strategy:density:causal:ensemble``.

        Uses the pipeline fingerprint hashed once at construction —
        recomputing it per lookup would re-serialise the config and
        schema on every cached row.
        """
        return (
            f"{self.fingerprint}:{self.engine_fingerprint}"
            f":{self.strategy_fingerprint}"
            f":{self.density_fingerprint}:{self.causal_fingerprint}"
            f":{self.ensemble_fingerprint}"
        )

    def _key(self, row, desired, fingerprint):
        return (row.tobytes(), int(desired), fingerprint)

    # -- rollover migration ---------------------------------------------------
    def migrate_cache(self, old_service):
        """Carry another service's cache across a model rollover.

        Re-validates every explanation cached by ``old_service`` (under
        its own composite fingerprint) against *this* service's model in
        ONE batched pass — one black-box predict over the cached
        counterfactuals plus one compiled-kernel feasibility pass — and
        re-inserts the rows whose counterfactual still reaches its
        desired class under the new model, keyed under this service's
        fingerprint.  Survivors keep serving from memory after a
        retrain; dropped rows fall back to cache misses and are
        re-explained by the new model on their next request.

        Returns (and records in :attr:`last_migration`) the counters
        ``{"examined", "survivors", "dropped"}``.
        """
        width = self.encoder.n_encoded
        old_fingerprint = old_service.cache_fingerprint
        rows, desired, x_cf = [], [], []
        for (row_bytes, target, fingerprint), entry in old_service.cache.items():
            if fingerprint != old_fingerprint:
                continue
            row = np.frombuffer(row_bytes, dtype=np.float64)
            if row.shape[0] != width:
                continue
            rows.append(row)
            desired.append(int(target))
            x_cf.append(entry[0])

        counters = {"examined": len(rows), "survivors": 0, "dropped": 0}
        if rows:
            rows = np.stack(rows)
            desired = np.asarray(desired, dtype=int)
            x_cf = np.stack(x_cf)
            predicted = self.explainer.blackbox.predict(x_cf)
            feasible = self.explainer.compiled_constraints.satisfied(rows, x_cf)
            survivors = predicted == desired
            fingerprint = self.cache_fingerprint
            for i in np.flatnonzero(survivors):
                self.cache.put(
                    self._key(rows[i], desired[i], fingerprint),
                    (x_cf[i].copy(), int(predicted[i]), bool(feasible[i])),
                )
            counters["survivors"] = int(survivors.sum())
            counters["dropped"] = int((~survivors).sum())
        self.last_migration = counters
        return counters

    # -- batch serving -------------------------------------------------------
    def explain_batch(self, rows, desired=None):
        """Explain many rows at once; returns a :class:`CFBatchResult`.

        Rows already in the cache are answered from memory; the remaining
        rows are coalesced into a single vectorized pass through the
        generator (one decode, one validity call, one feasibility call),
        exactly the one-shot ``FeasibleCFExplainer.explain`` computation.
        """
        rows = self._check_rows(rows)
        desired = self._resolve_desired(rows, desired)

        n_rows, width = rows.shape
        x_cf = np.empty((n_rows, width))
        predicted = np.empty(n_rows, dtype=int)
        feasible = np.empty(n_rows, dtype=bool)

        # invariant for the whole batch: hoist it off the per-row path
        fingerprint = self.cache_fingerprint
        miss_indices = []
        for i in range(n_rows):
            entry = self.cache.get(self._key(rows[i], desired[i], fingerprint))
            if entry is None:
                miss_indices.append(i)
            else:
                x_cf[i], predicted[i], feasible[i] = entry

        if miss_indices:
            miss = np.asarray(miss_indices)
            sub_rows = rows[miss]
            sub_desired = desired[miss]
            if self._hosts_model:
                # a hosted model without a strategy serves the core path
                # through the runner (diverse sweep for density, one-shot
                # decode for causal-only); the plan engine replays the
                # compiled chain instead of the staged stages
                sub = self.runner.run(
                    self.strategy or self.core_strategy, sub_rows, sub_desired,
                    plan=self.plan)
                sub_cf, sub_predicted = sub.x_cf, sub.predicted
                sub_feasible = sub.feasible
            else:
                generator = self.explainer.generator
                sub_cf = generator.generate(sub_rows, sub_desired)
                sub_predicted = self.explainer.blackbox.predict(sub_cf)
                sub_feasible = self.explainer.compiled_constraints.satisfied(sub_rows, sub_cf)
            x_cf[miss] = sub_cf
            predicted[miss] = sub_predicted
            feasible[miss] = sub_feasible
            for j, i in enumerate(miss_indices):
                # .copy(): caching a view would pin the whole batch array
                # in memory until every one of its rows was evicted
                self.cache.put(
                    self._key(rows[i], desired[i], fingerprint),
                    (sub_cf[j].copy(), int(sub_predicted[j]), bool(sub_feasible[j])),
                )

        with self._lock:
            self.batches_served += 1
            self.rows_served += n_rows
        return CFBatchResult(
            x=rows,
            x_cf=x_cf,
            desired=desired,
            predicted=predicted,
            valid=predicted == desired,
            feasible=feasible,
            encoder=self.encoder,
        )

    # -- micro-batched single-row serving -------------------------------------
    def submit(self, row, desired=None):
        """Queue one row for the next flush; returns an :class:`ExplainTicket`.

        Single-row traffic is the worst case for a vectorized engine, so
        the service does not answer immediately: queued tickets are
        resolved together by :meth:`flush` through ONE
        ``generate_candidates`` call covering every pending row.
        """
        row = np.asarray(row, dtype=np.float64).reshape(-1)
        check_encoded_rows(row.reshape(1, -1), self.encoder, "row")
        ticket = ExplainTicket(row, desired)
        with self._lock:
            self._pending.append(ticket)
        return ticket

    @property
    def pending(self):
        """Number of tickets waiting for a flush."""
        with self._lock:
            return len(self._pending)

    def flush(self, n_candidates=8, rng=None):
        """Resolve every pending ticket with one vectorized sweep.

        Stacks all queued rows and answers them in ONE pass.  On the
        default core path that is a single
        :func:`~repro.core.selection.generate_candidates` call (batched
        decode + one validity call + one feasibility call) with the
        closest valid & feasible candidate picked per ticket; a
        strategy-configured service instead routes the stacked rows
        through one engine-runner pass of its strategy, so tickets and
        ``explain_batch`` always answer with the same method.  Returns
        the resolved tickets.
        """
        # swap the queue atomically: a concurrent submit lands either in
        # this flush or the next one, never in both and never in neither
        with self._lock:
            if not self._pending:
                return []
            tickets = self._pending
            self._pending = []

        rows = np.stack([ticket.row for ticket in tickets])
        raw = [-1 if ticket.desired is None else int(ticket.desired) for ticket in tickets]
        desired = np.asarray(raw)
        if np.any(desired < 0):
            flipped = 1 - self.explainer.blackbox.predict(rows)
            desired = np.where(desired < 0, flipped, desired)

        if self._hosts_model:
            result, diagnostics = self.runner.run(
                self.strategy or self.core_strategy, rows, desired,
                return_diagnostics=True, plan=self.plan
            )
            for i, (ticket, target) in enumerate(zip(tickets, desired)):
                ticket._result = {
                    "x_cf": result.x_cf[i],
                    "desired": int(target),
                    "predicted": int(result.predicted[i]),
                    "valid": bool(result.valid[i]),
                    "feasible": bool(result.feasible[i]),
                    "chosen": int(diagnostics["chosen"][i]),
                    "n_usable": int(diagnostics["n_usable"][i]),
                }
        else:
            candidate_sets = generate_candidates(
                self.explainer,
                rows,
                n_candidates=n_candidates,
                desired=desired,
                rng=rng,
            )
            for ticket, candidate_set, target in zip(tickets, candidate_sets, desired):
                index = _pick_candidate(candidate_set)
                valid = bool(candidate_set.valid[index])
                ticket._result = {
                    "x_cf": candidate_set.candidates[index],
                    "desired": int(target),
                    # valid means predict == desired; binary classes make
                    # the chosen candidate's prediction recoverable
                    # without a second black-box call
                    "predicted": int(target) if valid else 1 - int(target),
                    "valid": valid,
                    "feasible": bool(candidate_set.feasible[index]),
                    "chosen": index,
                    "n_usable": int(candidate_set.usable_mask.sum()),
                }
        with self._lock:
            self.flushes += 1
            self.rows_coalesced += len(tickets)
        return tickets

    # -- execution-state sharing ----------------------------------------------
    def adopt_execution_from(self, sibling):
        """Reuse a sibling replica's compiled execution state.

        A scaled-out worker pool runs N services over ONE shared
        pipeline; without sharing, every replica would build its own
        :class:`EngineRunner`, its own core strategy and — on the plan
        engine — compile its own :class:`ExplainPlan`.  This adopts the
        sibling's runner, core strategy and compiled plan so the pool
        holds exactly one of each (the runner and plan keep all state at
        construction time, so concurrent replay is safe).

        Only legal between services hosting the *identical* model
        objects and execution configuration — anything else would let a
        cache key describe one configuration while another one serves,
        so it raises ``ValueError`` instead.
        """
        mismatched = [
            name
            for name, mine, theirs in (
                ("strategy", self.strategy, sibling.strategy),
                ("density", self.density, sibling.density),
                ("causal", self.causal, sibling.causal),
                ("ensemble", self.ensemble, sibling.ensemble),
            )
            if mine is not theirs
        ]
        if self.engine != sibling.engine:
            mismatched.append("engine")
        if self.plan_backend != sibling.plan_backend:
            mismatched.append("plan_backend")
        if (
            self.density_weight != sibling.density_weight
            or self.density_candidates != sibling.density_candidates
        ):
            mismatched.append("density configuration")
        if self.robust_quorum != sibling.robust_quorum:
            mismatched.append("robust_quorum")
        if mismatched:
            raise ValueError(
                "cannot adopt execution state across differently configured "
                f"services (mismatched: {', '.join(mismatched)})")
        self._runner = sibling.runner
        if sibling.strategy is None:
            self._core_strategy = sibling.core_strategy
        self._compiled_plan = sibling.plan
        return self

    # -- introspection --------------------------------------------------------
    @property
    def stats(self):
        """Serving + cache counters for dashboards and tests.

        The serving counters are read under the service lock and the
        cache counters under the cache's own lock, so each group is a
        consistent snapshot even under concurrent traffic.
        """
        with self._lock:
            counters = {
                "batches_served": self.batches_served,
                "rows_served": self.rows_served,
                "flushes": self.flushes,
                "rows_coalesced": self.rows_coalesced,
            }
        counters.update({f"cache_{k}": v for k, v in self.cache.stats.items()})
        return counters


def _pick_candidate(candidate_set):
    """Closest-by-L1 candidate, preferring valid & feasible, then valid.

    Index 0 is the deterministic (zero-noise) decode, so the final
    fallback degrades to exactly the one-shot explain output.
    """
    distances = np.abs(candidate_set.candidates - candidate_set.x[None, :]).sum(axis=1)
    for mask in (candidate_set.usable_mask, candidate_set.valid):
        if mask.any():
            pool = np.flatnonzero(mask)
            return int(pool[np.argmin(distances[pool])])
    return 0

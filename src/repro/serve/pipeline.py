"""Shared build/train code for the one-shot and serving paths.

Before the serving layer existed, the experiment harness and every
example trained its own black-box and CF-VAE inline.  This module is the
single place that builds a full trained pipeline now: the harness's
``prepare_context``, the CLI's ``serve-demo`` and the artifact store all
call the same functions, so the one-shot paper-reproduction path and the
warm-start serving path cannot drift apart.

The RNG seeding discipline is load-bearing: :func:`train_shared_blackbox`
uses the exact streams the harness always used (``seed + 10`` for init,
``seed + 11`` for training), so a pipeline trained here is bit-identical
to one trained by the pre-serving code.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

import numpy as np

from ..core import FeasibleCFExplainer, paper_config
from ..data import load_dataset
from ..experiments.runconfig import get_scale
from ..models import BlackBoxClassifier, accuracy, train_classifier

__all__ = [
    "TrainedPipeline",
    "load_bundle",
    "pipeline_fingerprint",
    "train_pipeline",
    "train_shared_blackbox",
]


def load_bundle(dataset, scale="fast", seed=0):
    """Load a dataset at the row count a named experiment scale implies."""
    scale = get_scale(scale)
    return load_dataset(dataset, n_instances=scale.instances_for(dataset), seed=seed)


def train_shared_blackbox(bundle, epochs, seed):
    """Train the shared black-box classifier on a bundle's train split.

    Identical streams to the historical ``prepare_context`` inline code:
    ``seed + 10`` seeds the weight init, ``seed + 11`` the batching.
    """
    x_train, y_train = bundle.split("train")
    blackbox = BlackBoxClassifier(bundle.encoder.n_encoded, np.random.default_rng(seed + 10))
    train_classifier(
        blackbox,
        x_train,
        y_train,
        epochs=epochs,
        rng=np.random.default_rng(seed + 11),
        balanced=True,
    )
    return blackbox


@dataclass
class TrainedPipeline:
    """A fully trained explanation pipeline plus its provenance.

    ``bundle`` is ``None`` when the pipeline was warm-started from an
    artifact store (the store persists models, never data); everything a
    serving process needs lives on ``explainer``.
    """

    explainer: FeasibleCFExplainer
    dataset: str
    n_instances: int
    seed: int
    constraint_kind: str
    blackbox_epochs: int
    blackbox_accuracy: float
    bundle: object = None

    @property
    def blackbox(self):
        """The trained black-box classifier."""
        return self.explainer.blackbox

    @property
    def encoder(self):
        """The fitted tabular encoder."""
        return self.explainer.encoder

    @property
    def config(self):
        """The CF-VAE training configuration."""
        return self.explainer.config

    @property
    def fingerprint(self):
        """Dataset + config + schema fingerprint of this pipeline."""
        return pipeline_fingerprint(
            self.dataset,
            self.n_instances,
            self.seed,
            self.constraint_kind,
            self.config,
            self.encoder.schema,
            self.blackbox_epochs,
        )


def pipeline_fingerprint(
    dataset,
    n_instances,
    seed,
    constraint_kind,
    config,
    schema,
    blackbox_epochs,
):
    """Deterministic hash of everything that shapes a trained pipeline.

    Covers the dataset identity and size, the root seed, the constraint
    kind, every training hyperparameter of both stages (the CF-VAE config
    and the black-box epoch count) and the full feature schema.  Two
    pipelines agree on this hash exactly when retraining one would
    reproduce the other, which is what lets the artifact store reject a
    stale artifact instead of silently serving it.
    """
    features = [
        [
            spec.name,
            spec.ftype.value,
            list(spec.categories),
            [float(bound) for bound in spec.bounds],
            bool(spec.immutable),
        ]
        for spec in schema.features
    ]
    payload = {
        "dataset": str(dataset),
        "n_instances": int(n_instances),
        "seed": int(seed),
        "constraint_kind": str(constraint_kind),
        "config": asdict(config),
        "blackbox_epochs": int(blackbox_epochs),
        "features": features,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def train_pipeline(
    dataset,
    scale="fast",
    seed=0,
    constraint_kind="unary",
    config=None,
    bundle=None,
    verbose=False,
):
    """Train a full pipeline: data -> black-box -> CF-VAE.

    This is the cold-start path.  Pass ``bundle`` to reuse an
    already-loaded dataset (the harness does); otherwise the dataset is
    loaded at the given scale.  ``config`` defaults to the paper's
    Table III setting for ``(dataset, constraint_kind)``.
    """
    scale = get_scale(scale)
    if bundle is None:
        bundle = load_bundle(dataset, scale=scale, seed=seed)
    if config is None:
        config = paper_config(dataset, constraint_kind)

    blackbox = train_shared_blackbox(bundle, scale.blackbox_epochs, seed)
    explainer = FeasibleCFExplainer(
        bundle.encoder,
        constraint_kind=constraint_kind,
        config=config,
        blackbox=blackbox,
        seed=seed,
    )
    x_train, y_train = bundle.split("train")
    explainer.fit(x_train, y_train, verbose=verbose)

    x_test, y_test = bundle.split("test")
    return TrainedPipeline(
        explainer=explainer,
        dataset=bundle.name,
        n_instances=scale.instances_for(dataset),
        seed=seed,
        constraint_kind=constraint_kind,
        blackbox_epochs=scale.blackbox_epochs,
        blackbox_accuracy=accuracy(blackbox, x_test, y_test),
        bundle=bundle,
    )

"""Versioned on-disk store for trained explanation pipelines.

One artifact = one directory holding the trained black-box weights, the
CF-VAE weights and a ``manifest.json`` with everything needed to rebuild
the pipeline in a fresh process: the encoder's fitted state, the training
configuration, provenance (dataset, size, seed, constraint kind) and a
fingerprint over all of it.

Staleness is a first-class failure: loading re-derives the fingerprint
from the manifest against the *current* code's schema and rejects the
artifact (``StaleArtifactError``) when the schema, config or format
version has drifted since training, instead of silently serving outputs
from an incompatible model.  File corruption is caught by per-file
SHA-256 checksums recorded in the manifest.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import time
from dataclasses import asdict

import numpy as np

from ..causal import causal_from_state
from ..core import CFTrainingConfig, FeasibleCFExplainer, paper_config
from ..data import TabularEncoder, dataset_schema
from ..density import density_from_state
from ..experiments.runconfig import get_scale
from ..models import BlackBoxClassifier, BlackBoxEnsemble, ConditionalVAE
from ..nn import load_state, save_state
from .pipeline import TrainedPipeline, pipeline_fingerprint, train_pipeline

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactError",
    "ArtifactStore",
    "StaleArtifactError",
]

#: Bump when the artifact layout or manifest schema changes; loading an
#: artifact written under any other version raises StaleArtifactError.
ARTIFACT_FORMAT_VERSION = 1

_MANIFEST = "manifest.json"
_BLACKBOX = "blackbox.npz"
_CFVAE = "cfvae.npz"
_DENSITY = "density.npz"
_DENSITY_META = "density.json"
_CAUSAL = "causal.npz"
_CAUSAL_META = "causal.json"
_ENSEMBLE = "ensemble.npz"
_ENSEMBLE_META = "ensemble.json"


class ArtifactError(RuntimeError):
    """An artifact is missing, incomplete or corrupted."""


class StaleArtifactError(ArtifactError):
    """An artifact exists but no longer matches the current code/config.

    Every raise site records the mismatch in structured form —
    ``expected`` (what the current code or caller demanded) and
    ``found`` (what the artifact actually carries) — so rollover
    tooling can log the exact fingerprint/version pair and the serving
    migration path can distinguish a model-rollover mismatch from
    corruption without parsing the message.
    """

    def __init__(self, message, expected=None, found=None):
        super().__init__(message)
        self.expected = expected
        self.found = found


def _file_sha256(path):
    return hashlib.sha256(pathlib.Path(path).read_bytes()).hexdigest()


class ArtifactStore:
    """Directory of named, fingerprinted pipeline artifacts.

    Parameters
    ----------
    root:
        Directory holding one subdirectory per artifact name.  Created
        lazily on the first :meth:`save`.
    """

    def __init__(self, root):
        self.root = pathlib.Path(root)

    def artifact_dir(self, name):
        """Directory of the artifact called ``name``."""
        return self.root / name

    def names(self):
        """Sorted names of artifacts that have a manifest on disk."""
        if not self.root.is_dir():
            return []
        return sorted(item.name for item in self.root.iterdir() if (item / _MANIFEST).is_file())

    def exists(self, name):
        """Whether an artifact called ``name`` has a manifest on disk."""
        return (self.artifact_dir(name) / _MANIFEST).is_file()

    @staticmethod
    def default_name(dataset, constraint_kind, seed):
        """Canonical artifact name for a (dataset, kind, seed) pipeline."""
        return f"{dataset}-{constraint_kind}-seed{int(seed)}"

    # -- writing ------------------------------------------------------------
    def save(self, pipeline, name=None):
        """Persist a :class:`TrainedPipeline`; returns the artifact dir.

        The manifest is written last, so a crash mid-save leaves a
        directory without a manifest — which :meth:`load` reports as a
        missing artifact rather than a corrupt one.
        """
        if pipeline.constraint_kind not in ("unary", "binary"):
            raise ArtifactError(
                f"cannot persist constraint_kind={pipeline.constraint_kind!r}: "
                f"custom constraint sets have no catalog recipe to rebuild "
                f"from on load"
            )
        explainer = pipeline.explainer
        if explainer.generator is None:
            raise ArtifactError("pipeline is not fitted; nothing to persist")

        if name is None:
            name = self.default_name(pipeline.dataset, pipeline.constraint_kind, pipeline.seed)
        target = self.artifact_dir(name)
        target.mkdir(parents=True, exist_ok=True)
        save_state(target / _BLACKBOX, explainer.blackbox)
        save_state(target / _CFVAE, explainer.generator.vae)

        manifest = {
            "format_version": ARTIFACT_FORMAT_VERSION,
            "created_at": time.time(),
            "dataset": pipeline.dataset,
            "n_instances": int(pipeline.n_instances),
            "seed": int(pipeline.seed),
            "constraint_kind": pipeline.constraint_kind,
            "blackbox_epochs": int(pipeline.blackbox_epochs),
            "config": _config_payload(pipeline.config),
            "encoder": explainer.encoder.get_state(),
            "blackbox": {
                "hidden": int(explainer.blackbox.hidden),
                "accuracy": float(pipeline.blackbox_accuracy),
            },
            "vae": {"latent_dim": int(explainer.generator.vae.latent_dim)},
            "fingerprint": pipeline.fingerprint,
            "checksums": {
                _BLACKBOX: _file_sha256(target / _BLACKBOX),
                _CFVAE: _file_sha256(target / _CFVAE),
            },
        }
        manifest_path = target / _MANIFEST
        manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
        return target

    # -- reading ------------------------------------------------------------
    def manifest(self, name):
        """Parsed manifest of artifact ``name`` (raises on missing/corrupt)."""
        path = self.artifact_dir(name) / _MANIFEST
        if not path.is_file():
            raise ArtifactError(f"no artifact {name!r} under {self.root} (missing {_MANIFEST})")
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise ArtifactError(f"manifest of {name!r} is corrupted: {error}") from error

    def fresh(self, name, fingerprint):
        """Whether ``name`` exists and matches ``fingerprint`` exactly."""
        if not self.exists(name):
            return False
        try:
            manifest = self.manifest(name)
        except ArtifactError:
            return False
        return (
            manifest.get("format_version") == ARTIFACT_FORMAT_VERSION
            and manifest.get("fingerprint") == fingerprint
        )

    def load(self, name, expected_fingerprint=None):
        """Rebuild a :class:`TrainedPipeline` from artifact ``name``.

        Raises :class:`StaleArtifactError` when the format version, the
        recomputed fingerprint or ``expected_fingerprint`` disagree with
        the manifest, and :class:`ArtifactError` when a weight file fails
        its checksum.  ``bundle`` on the result is ``None`` — the store
        persists models, never data.
        """
        manifest = self.manifest(name)
        target = self.artifact_dir(name)

        version = manifest.get("format_version")
        if version != ARTIFACT_FORMAT_VERSION:
            raise StaleArtifactError(
                f"artifact {name!r} has format_version={version}, this code "
                f"reads version {ARTIFACT_FORMAT_VERSION} "
                f"(expected {ARTIFACT_FORMAT_VERSION}, found {version}); "
                f"retrain and re-save",
                expected=ARTIFACT_FORMAT_VERSION,
                found=version,
            )

        for filename, recorded in manifest["checksums"].items():
            path = target / filename
            if not path.is_file():
                raise ArtifactError(f"artifact {name!r} is missing {filename}")
            actual = _file_sha256(path)
            if actual != recorded:
                raise ArtifactError(
                    f"artifact {name!r}: {filename} fails its checksum "
                    f"(expected {recorded[:12]}..., got {actual[:12]}...); "
                    f"the file is corrupted or was edited after save"
                )

        dataset = manifest["dataset"]
        schema = dataset_schema(dataset)
        config = CFTrainingConfig(**manifest["config"])
        recomputed = pipeline_fingerprint(
            dataset,
            manifest["n_instances"],
            manifest["seed"],
            manifest["constraint_kind"],
            config,
            schema,
            manifest["blackbox_epochs"],
        )
        if recomputed != manifest["fingerprint"]:
            raise StaleArtifactError(
                f"artifact {name!r} is stale: its fingerprint no longer "
                f"matches the current schema/config for {dataset!r} "
                f"(expected {recomputed}, found {manifest['fingerprint']}); "
                f"retrain and re-save",
                expected=recomputed,
                found=manifest["fingerprint"],
            )
        if expected_fingerprint is not None and expected_fingerprint != recomputed:
            raise StaleArtifactError(
                f"artifact {name!r} does not match the requested pipeline "
                f"(expected {expected_fingerprint}, found {recomputed})",
                expected=expected_fingerprint,
                found=recomputed,
            )

        encoder = TabularEncoder.from_state(schema, manifest["encoder"])
        blackbox = BlackBoxClassifier(
            encoder.n_encoded,
            np.random.default_rng(0),
            hidden=manifest["blackbox"]["hidden"],
        )
        load_state(target / _BLACKBOX, blackbox)
        blackbox.eval()
        vae = ConditionalVAE(
            encoder.n_encoded,
            np.random.default_rng(0),
            latent_dim=manifest["vae"]["latent_dim"],
        )
        load_state(target / _CFVAE, vae)
        explainer = FeasibleCFExplainer.from_trained(
            encoder,
            blackbox,
            vae,
            constraint_kind=manifest["constraint_kind"],
            config=config,
            seed=manifest["seed"],
        )
        return TrainedPipeline(
            explainer=explainer,
            dataset=dataset,
            n_instances=manifest["n_instances"],
            seed=manifest["seed"],
            constraint_kind=manifest["constraint_kind"],
            blackbox_epochs=manifest["blackbox_epochs"],
            blackbox_accuracy=manifest["blackbox"]["accuracy"],
            bundle=None,
        )

    # -- model-state overlays (density, causal) -----------------------------
    def _save_overlay(self, name, model, label, npz_name, meta_name):
        """Persist a fitted model's flat state next to artifact ``name``.

        Arrays of the state go into ``<label>.npz``; scalar state, the
        model fingerprint and the npz checksum go into a ``<label>.json``
        sidecar (written last, like the manifest).  The artifact itself
        must already exist — model state is an overlay on a trained
        pipeline, never a standalone artifact.
        """
        if not self.exists(name):
            raise ArtifactError(
                f"no artifact {name!r} to attach {label} state to; save the pipeline first"
            )
        state = model.get_state()
        arrays = {k: v for k, v in state.items() if isinstance(v, np.ndarray)}
        scalars = {k: v for k, v in state.items() if not isinstance(v, np.ndarray)}
        target = self.artifact_dir(name)
        np.savez(target / npz_name, **arrays)
        meta = {
            "format_version": ARTIFACT_FORMAT_VERSION,
            "created_at": time.time(),
            "state": scalars,
            "array_keys": sorted(arrays),
            "fingerprint": model.fingerprint(),
            "checksum": _file_sha256(target / npz_name),
        }
        (target / meta_name).write_text(json.dumps(meta, indent=2) + "\n")
        return target / meta_name

    def _load_overlay(self, name, label, npz_name, meta_name):
        """Read an overlay's ``(state, meta)``; shared staleness checks."""
        target = self.artifact_dir(name)
        meta_path = target / meta_name
        if not meta_path.is_file():
            raise ArtifactError(
                f"artifact {name!r} has no {label} state (missing {meta_name})"
            )
        try:
            meta = json.loads(meta_path.read_text())
        except json.JSONDecodeError as error:
            raise ArtifactError(f"{label} sidecar of {name!r} is corrupted: {error}") from error

        version = meta.get("format_version")
        if version != ARTIFACT_FORMAT_VERSION:
            raise StaleArtifactError(
                f"{label} state of {name!r} has format_version={version}, this "
                f"code reads version {ARTIFACT_FORMAT_VERSION} "
                f"(expected {ARTIFACT_FORMAT_VERSION}, found {version}); "
                f"refit and re-save",
                expected=ARTIFACT_FORMAT_VERSION,
                found=version,
            )

        npz_path = target / npz_name
        if not npz_path.is_file():
            raise ArtifactError(f"artifact {name!r} is missing {npz_name}")
        actual = _file_sha256(npz_path)
        if actual != meta["checksum"]:
            raise ArtifactError(
                f"artifact {name!r}: {npz_name} fails its checksum "
                f"(expected {meta['checksum'][:12]}..., got {actual[:12]}...); "
                f"the file is corrupted or was edited after save"
            )

        state = dict(meta["state"])
        with np.load(npz_path) as data:
            for key in meta["array_keys"]:
                state[key] = data[key]
        return state, meta

    def _check_overlay_fingerprint(self, name, model, meta, label, expected_fingerprint):
        """Reject a rebuilt overlay model whose fingerprint drifted."""
        recomputed = model.fingerprint()
        if recomputed != meta["fingerprint"]:
            raise StaleArtifactError(
                f"{label} state of {name!r} is stale: its fingerprint no "
                f"longer matches the persisted state "
                f"(expected {recomputed}, found {meta['fingerprint']}); "
                f"refit and re-save",
                expected=recomputed,
                found=meta["fingerprint"],
            )
        if expected_fingerprint is not None and expected_fingerprint != recomputed:
            raise StaleArtifactError(
                f"{label} state of {name!r} does not match the requested "
                f"model (expected {expected_fingerprint}, found {recomputed})",
                expected=expected_fingerprint,
                found=recomputed,
            )
        return model

    # -- density state ------------------------------------------------------
    def save_density(self, name, model):
        """Persist a fitted density estimator next to artifact ``name``.

        Arrays of the estimator's state go into ``density.npz``; scalar
        state, the estimator fingerprint and the npz checksum go into a
        ``density.json`` sidecar (written last, like the manifest).
        """
        return self._save_overlay(name, model, "density", _DENSITY, _DENSITY_META)

    def has_density(self, name):
        """Whether artifact ``name`` carries persisted density state."""
        return (self.artifact_dir(name) / _DENSITY_META).is_file()

    def load_density(self, name, vae=None, expected_fingerprint=None):
        """Rebuild the fitted density estimator stored with ``name``.

        ``vae`` re-attaches the encoder a ``latent`` estimator scores
        through (pass the warm-started pipeline's CF-VAE).  Raises
        :class:`StaleArtifactError` when the format version or the
        recomputed fingerprint disagree with the sidecar, and
        :class:`ArtifactError` on a missing/corrupt file — the same
        error contract as :meth:`load`.
        """
        state, meta = self._load_overlay(name, "density", _DENSITY, _DENSITY_META)
        model = density_from_state(state, vae=vae)
        return self._check_overlay_fingerprint(name, model, meta, "density", expected_fingerprint)

    # -- causal state -------------------------------------------------------
    def save_causal(self, name, model):
        """Persist a fitted causal model next to artifact ``name``.

        Same overlay layout as :meth:`save_density`: arrays in
        ``causal.npz``, scalars + fingerprint + checksum in a
        ``causal.json`` sidecar written last.
        """
        return self._save_overlay(name, model, "causal", _CAUSAL, _CAUSAL_META)

    def has_causal(self, name):
        """Whether artifact ``name`` carries persisted causal state."""
        return (self.artifact_dir(name) / _CAUSAL_META).is_file()

    def load_causal(self, name, encoder=None, expected_fingerprint=None):
        """Rebuild the fitted causal model stored with ``name``.

        ``encoder`` re-attaches the fitted encoder the model reads its
        feature layout from; when ``None`` it is rebuilt from the
        artifact's own manifest, so a causal overlay is loadable without
        first loading the full pipeline.  Error contract matches
        :meth:`load_density` — :class:`StaleArtifactError` on version or
        fingerprint drift (including an encoder whose fitted ranges no
        longer match the persisted equation ranges),
        :class:`ArtifactError` on missing/corrupt files.
        """
        state, meta = self._load_overlay(name, "causal", _CAUSAL, _CAUSAL_META)
        if encoder is None:
            manifest = self.manifest(name)
            schema = dataset_schema(manifest["dataset"])
            encoder = TabularEncoder.from_state(schema, manifest["encoder"])
        model = causal_from_state(state, encoder)
        return self._check_overlay_fingerprint(name, model, meta, "causal", expected_fingerprint)

    # -- ensemble state ------------------------------------------------------
    def save_ensemble(self, name, ensemble):
        """Persist a trained :class:`BlackBoxEnsemble` next to artifact ``name``.

        Same overlay layout as :meth:`save_density` / :meth:`save_causal`:
        member weight arrays in ``ensemble.npz``, scalars + fingerprint +
        checksum in an ``ensemble.json`` sidecar written last.  The
        serving rollover path keys its staleness decisions off this
        sidecar's fingerprint.
        """
        return self._save_overlay(name, ensemble, "ensemble", _ENSEMBLE, _ENSEMBLE_META)

    def has_ensemble(self, name):
        """Whether artifact ``name`` carries persisted ensemble state."""
        return (self.artifact_dir(name) / _ENSEMBLE_META).is_file()

    def load_ensemble(self, name, expected_fingerprint=None):
        """Rebuild the trained ensemble stored with ``name``.

        Error contract matches :meth:`load_density` —
        :class:`StaleArtifactError` (carrying ``expected``/``found``) on
        version or fingerprint drift, :class:`ArtifactError` on
        missing/corrupt files.
        """
        state, meta = self._load_overlay(name, "ensemble", _ENSEMBLE, _ENSEMBLE_META)
        ensemble = BlackBoxEnsemble.from_state(state)
        return self._check_overlay_fingerprint(
            name, ensemble, meta, "ensemble", expected_fingerprint)

    # -- train-or-load ------------------------------------------------------
    def ensure(
        self,
        dataset,
        scale="fast",
        seed=0,
        constraint_kind="unary",
        config=None,
        name=None,
        bundle=None,
        verbose=False,
    ):
        """Warm-start from a fresh artifact or train-and-save a new one.

        Returns ``(pipeline, was_cached)``.  A stale or missing artifact
        is replaced by retraining; a fresh one short-circuits training
        entirely.
        """
        scale = get_scale(scale)
        if config is None:
            config = paper_config(dataset, constraint_kind)
        fingerprint = pipeline_fingerprint(
            dataset,
            scale.instances_for(dataset),
            seed,
            constraint_kind,
            config,
            dataset_schema(dataset),
            scale.blackbox_epochs,
        )
        name = name or self.default_name(dataset, constraint_kind, seed)
        if self.fresh(name, fingerprint):
            return self.load(name, expected_fingerprint=fingerprint), True
        pipeline = train_pipeline(
            dataset,
            scale=scale,
            seed=seed,
            constraint_kind=constraint_kind,
            config=config,
            bundle=bundle,
            verbose=verbose,
        )
        self.save(pipeline, name=name)
        return pipeline, False


def _config_payload(config):
    """JSON-ready dict of a CFTrainingConfig."""
    payload = asdict(config)
    return {
        key: (float(value) if isinstance(value, float) else value)
        for key, value in payload.items()
    }

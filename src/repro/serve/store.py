"""Versioned on-disk store for trained explanation pipelines.

One artifact = one directory holding the trained black-box weights, the
CF-VAE weights and a ``manifest.json`` with everything needed to rebuild
the pipeline in a fresh process: the encoder's fitted state, the training
configuration, provenance (dataset, size, seed, constraint kind) and a
fingerprint over all of it.

Staleness is a first-class failure: loading re-derives the fingerprint
from the manifest against the *current* code's schema and rejects the
artifact (``StaleArtifactError``) when the schema, config or format
version has drifted since training, instead of silently serving outputs
from an incompatible model.  File corruption is caught by per-file
SHA-256 checksums recorded in the manifest.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import time
import warnings
from dataclasses import asdict, dataclass

import numpy as np

from ..causal import causal_from_state
from ..core import CFTrainingConfig, FeasibleCFExplainer, paper_config
from ..data import TabularEncoder, dataset_schema
from ..density import density_from_state
from ..experiments.runconfig import get_scale
from ..models import BlackBoxClassifier, BlackBoxEnsemble, ConditionalVAE
from ..nn import load_state, save_state
from .pipeline import TrainedPipeline, pipeline_fingerprint, train_pipeline

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "MMAP_THRESHOLD",
    "ArtifactError",
    "ArtifactStore",
    "OverlayKind",
    "StaleArtifactError",
    "overlay_kinds",
    "register_overlay_kind",
]

#: Bump when the artifact layout or manifest schema changes; loading an
#: artifact written under any other version raises StaleArtifactError.
ARTIFACT_FORMAT_VERSION = 1

#: Overlay state arrays at or above this many bytes are written as
#: standalone ``<kind>.<key>.npy`` sidecar files instead of entries in
#: the ``<kind>.npz`` bundle, so loads can hand them back as
#: ``np.load(..., mmap_mode="r")`` memory maps — a 1M-row reference
#: population never gets a second resident copy.  The zip-framed npz
#: container cannot be memory-mapped, which is why the format splits.
MMAP_THRESHOLD = 1 << 20

_MANIFEST = "manifest.json"
_BLACKBOX = "blackbox.npz"
_CFVAE = "cfvae.npz"
_DENSITY = "density.npz"
_DENSITY_META = "density.json"
_CAUSAL = "causal.npz"
_CAUSAL_META = "causal.json"
_ENSEMBLE = "ensemble.npz"
_ENSEMBLE_META = "ensemble.json"


@dataclass(frozen=True)
class OverlayKind:
    """One registered overlay family: its files and its rebuild recipe.

    ``rebuild(store, name, state, vae=, encoder=)`` turns the loaded flat
    state dict back into a fitted model; kinds ignore the context
    keyword arguments they do not need (``vae`` re-attaches a CF-VAE to
    latent density estimators, ``encoder`` a fitted encoder to causal
    models).
    """

    name: str
    npz_name: str
    meta_name: str
    rebuild: callable


def _rebuild_density(store, name, state, vae=None, encoder=None):
    return density_from_state(state, vae=vae)


def _rebuild_causal(store, name, state, vae=None, encoder=None):
    if encoder is None:
        # rebuilt from the artifact's own manifest, so a causal overlay
        # is loadable without first loading the full pipeline
        manifest = store.manifest(name)
        schema = dataset_schema(manifest["dataset"])
        encoder = TabularEncoder.from_state(schema, manifest["encoder"])
    return causal_from_state(state, encoder)


def _rebuild_ensemble(store, name, state, vae=None, encoder=None):
    return BlackBoxEnsemble.from_state(state)


#: kind name -> OverlayKind; the store's generic save/load/has dispatch.
_OVERLAY_KINDS = {}


def register_overlay_kind(kind, overwrite=False):
    """Register an :class:`OverlayKind` under its name.

    Every model family the store can attach to an artifact (density,
    causal, ensemble, ...) registers once; the generic
    :meth:`ArtifactStore.save_overlay` / :meth:`ArtifactStore.load_overlay`
    surface then covers it with no per-kind store methods.
    """
    if kind.name in _OVERLAY_KINDS and not overwrite:
        raise ValueError(
            f"overlay kind {kind.name!r} is already registered (overwrite=True replaces)")
    _OVERLAY_KINDS[kind.name] = kind
    return kind


def overlay_kinds():
    """Sorted names of every registered overlay kind."""
    return tuple(sorted(_OVERLAY_KINDS))


def _overlay_kind(kind):
    if kind not in _OVERLAY_KINDS:
        known = ", ".join(overlay_kinds())
        raise KeyError(f"unknown overlay kind {kind!r}; registered: {known}")
    return _OVERLAY_KINDS[kind]


register_overlay_kind(OverlayKind("density", _DENSITY, _DENSITY_META, _rebuild_density))
register_overlay_kind(OverlayKind("causal", _CAUSAL, _CAUSAL_META, _rebuild_causal))
register_overlay_kind(OverlayKind("ensemble", _ENSEMBLE, _ENSEMBLE_META, _rebuild_ensemble))


def _deprecated_overlay_method(old, new):
    warnings.warn(
        f"ArtifactStore.{old} is deprecated; use ArtifactStore.{new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class ArtifactError(RuntimeError):
    """An artifact is missing, incomplete or corrupted."""


class StaleArtifactError(ArtifactError):
    """An artifact exists but no longer matches the current code/config.

    Every raise site records the mismatch in structured form —
    ``expected`` (what the current code or caller demanded) and
    ``found`` (what the artifact actually carries) — so rollover
    tooling can log the exact fingerprint/version pair and the serving
    migration path can distinguish a model-rollover mismatch from
    corruption without parsing the message.
    """

    def __init__(self, message, expected=None, found=None):
        super().__init__(message)
        self.expected = expected
        self.found = found


def _file_sha256(path):
    """Streamed SHA-256 so checksumming never loads a file wholesale."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class ArtifactStore:
    """Directory of named, fingerprinted pipeline artifacts.

    Parameters
    ----------
    root:
        Directory holding one subdirectory per artifact name.  Created
        lazily on the first :meth:`save`.
    """

    def __init__(self, root, mmap_threshold=MMAP_THRESHOLD):
        self.root = pathlib.Path(root)
        self.mmap_threshold = int(mmap_threshold)

    def artifact_dir(self, name):
        """Directory of the artifact called ``name``."""
        return self.root / name

    def names(self):
        """Sorted names of artifacts that have a manifest on disk."""
        if not self.root.is_dir():
            return []
        return sorted(item.name for item in self.root.iterdir() if (item / _MANIFEST).is_file())

    def exists(self, name):
        """Whether an artifact called ``name`` has a manifest on disk."""
        return (self.artifact_dir(name) / _MANIFEST).is_file()

    @staticmethod
    def default_name(dataset, constraint_kind, seed):
        """Canonical artifact name for a (dataset, kind, seed) pipeline."""
        return f"{dataset}-{constraint_kind}-seed{int(seed)}"

    # -- writing ------------------------------------------------------------
    def save(self, pipeline, name=None):
        """Persist a :class:`TrainedPipeline`; returns the artifact dir.

        The manifest is written last, so a crash mid-save leaves a
        directory without a manifest — which :meth:`load` reports as a
        missing artifact rather than a corrupt one.
        """
        if pipeline.constraint_kind not in ("unary", "binary"):
            raise ArtifactError(
                f"cannot persist constraint_kind={pipeline.constraint_kind!r}: "
                f"custom constraint sets have no catalog recipe to rebuild "
                f"from on load"
            )
        explainer = pipeline.explainer
        if explainer.generator is None:
            raise ArtifactError("pipeline is not fitted; nothing to persist")

        if name is None:
            name = self.default_name(pipeline.dataset, pipeline.constraint_kind, pipeline.seed)
        target = self.artifact_dir(name)
        target.mkdir(parents=True, exist_ok=True)
        save_state(target / _BLACKBOX, explainer.blackbox)
        save_state(target / _CFVAE, explainer.generator.vae)

        manifest = {
            "format_version": ARTIFACT_FORMAT_VERSION,
            "created_at": time.time(),
            "dataset": pipeline.dataset,
            "n_instances": int(pipeline.n_instances),
            "seed": int(pipeline.seed),
            "constraint_kind": pipeline.constraint_kind,
            "blackbox_epochs": int(pipeline.blackbox_epochs),
            "config": _config_payload(pipeline.config),
            "encoder": explainer.encoder.get_state(),
            "blackbox": {
                "hidden": int(explainer.blackbox.hidden),
                "accuracy": float(pipeline.blackbox_accuracy),
            },
            "vae": {"latent_dim": int(explainer.generator.vae.latent_dim)},
            "fingerprint": pipeline.fingerprint,
            "checksums": {
                _BLACKBOX: _file_sha256(target / _BLACKBOX),
                _CFVAE: _file_sha256(target / _CFVAE),
            },
        }
        manifest_path = target / _MANIFEST
        manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
        return target

    # -- reading ------------------------------------------------------------
    def manifest(self, name):
        """Parsed manifest of artifact ``name`` (raises on missing/corrupt)."""
        path = self.artifact_dir(name) / _MANIFEST
        if not path.is_file():
            raise ArtifactError(f"no artifact {name!r} under {self.root} (missing {_MANIFEST})")
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise ArtifactError(f"manifest of {name!r} is corrupted: {error}") from error

    def fresh(self, name, fingerprint):
        """Whether ``name`` exists and matches ``fingerprint`` exactly."""
        if not self.exists(name):
            return False
        try:
            manifest = self.manifest(name)
        except ArtifactError:
            return False
        return (
            manifest.get("format_version") == ARTIFACT_FORMAT_VERSION
            and manifest.get("fingerprint") == fingerprint
        )

    def load(self, name, expected_fingerprint=None):
        """Rebuild a :class:`TrainedPipeline` from artifact ``name``.

        Raises :class:`StaleArtifactError` when the format version, the
        recomputed fingerprint or ``expected_fingerprint`` disagree with
        the manifest, and :class:`ArtifactError` when a weight file fails
        its checksum.  ``bundle`` on the result is ``None`` — the store
        persists models, never data.
        """
        manifest = self.manifest(name)
        target = self.artifact_dir(name)

        version = manifest.get("format_version")
        if version != ARTIFACT_FORMAT_VERSION:
            raise StaleArtifactError(
                f"artifact {name!r} has format_version={version}, this code "
                f"reads version {ARTIFACT_FORMAT_VERSION} "
                f"(expected {ARTIFACT_FORMAT_VERSION}, found {version}); "
                f"retrain and re-save",
                expected=ARTIFACT_FORMAT_VERSION,
                found=version,
            )

        for filename, recorded in manifest["checksums"].items():
            path = target / filename
            if not path.is_file():
                raise ArtifactError(f"artifact {name!r} is missing {filename}")
            actual = _file_sha256(path)
            if actual != recorded:
                raise ArtifactError(
                    f"artifact {name!r}: {filename} fails its checksum "
                    f"(expected {recorded[:12]}..., got {actual[:12]}...); "
                    f"the file is corrupted or was edited after save"
                )

        dataset = manifest["dataset"]
        schema = dataset_schema(dataset)
        config = CFTrainingConfig(**manifest["config"])
        recomputed = pipeline_fingerprint(
            dataset,
            manifest["n_instances"],
            manifest["seed"],
            manifest["constraint_kind"],
            config,
            schema,
            manifest["blackbox_epochs"],
        )
        if recomputed != manifest["fingerprint"]:
            raise StaleArtifactError(
                f"artifact {name!r} is stale: its fingerprint no longer "
                f"matches the current schema/config for {dataset!r} "
                f"(expected {recomputed}, found {manifest['fingerprint']}); "
                f"retrain and re-save",
                expected=recomputed,
                found=manifest["fingerprint"],
            )
        if expected_fingerprint is not None and expected_fingerprint != recomputed:
            raise StaleArtifactError(
                f"artifact {name!r} does not match the requested pipeline "
                f"(expected {expected_fingerprint}, found {recomputed})",
                expected=expected_fingerprint,
                found=recomputed,
            )

        encoder = TabularEncoder.from_state(schema, manifest["encoder"])
        blackbox = BlackBoxClassifier(
            encoder.n_encoded,
            np.random.default_rng(0),
            hidden=manifest["blackbox"]["hidden"],
        )
        load_state(target / _BLACKBOX, blackbox)
        blackbox.eval()
        vae = ConditionalVAE(
            encoder.n_encoded,
            np.random.default_rng(0),
            latent_dim=manifest["vae"]["latent_dim"],
        )
        load_state(target / _CFVAE, vae)
        explainer = FeasibleCFExplainer.from_trained(
            encoder,
            blackbox,
            vae,
            constraint_kind=manifest["constraint_kind"],
            config=config,
            seed=manifest["seed"],
        )
        return TrainedPipeline(
            explainer=explainer,
            dataset=dataset,
            n_instances=manifest["n_instances"],
            seed=manifest["seed"],
            constraint_kind=manifest["constraint_kind"],
            blackbox_epochs=manifest["blackbox_epochs"],
            blackbox_accuracy=manifest["blackbox"]["accuracy"],
            bundle=None,
        )

    # -- model-state overlays (density, causal) -----------------------------
    def _save_overlay(self, name, model, label, npz_name, meta_name):
        """Persist a fitted model's flat state next to artifact ``name``.

        Small arrays of the state go into ``<label>.npz``; arrays at or
        above the store's ``mmap_threshold`` bytes are written as
        standalone ``<label>.<key>.npy`` sidecars (loadable with
        ``mmap_mode="r"``).  Scalar state, the model fingerprint and the
        per-file checksums go into a ``<label>.json`` sidecar (written
        last, like the manifest).  The artifact itself must already
        exist — model state is an overlay on a trained pipeline, never a
        standalone artifact.
        """
        if not self.exists(name):
            raise ArtifactError(
                f"no artifact {name!r} to attach {label} state to; save the pipeline first"
            )
        state = model.get_state()
        arrays = {k: v for k, v in state.items() if isinstance(v, np.ndarray)}
        scalars = {k: v for k, v in state.items() if not isinstance(v, np.ndarray)}
        target = self.artifact_dir(name)
        for stale in target.glob(f"{label}.*.npy"):
            stale.unlink()
        large = {k: v for k, v in arrays.items() if v.nbytes >= self.mmap_threshold}
        small = {k: v for k, v in arrays.items() if k not in large}
        np.savez(target / npz_name, **small)
        mmap_arrays = {}
        for key in sorted(large):
            filename = f"{label}.{key}.npy"
            np.save(target / filename, np.ascontiguousarray(large[key]))
            mmap_arrays[key] = {
                "file": filename,
                "checksum": _file_sha256(target / filename),
            }
        meta = {
            "format_version": ARTIFACT_FORMAT_VERSION,
            "created_at": time.time(),
            "state": scalars,
            "array_keys": sorted(small),
            "mmap_arrays": mmap_arrays,
            "fingerprint": model.fingerprint(),
            "checksum": _file_sha256(target / npz_name),
        }
        (target / meta_name).write_text(json.dumps(meta, indent=2) + "\n")
        return target / meta_name

    def _load_overlay(self, name, label, npz_name, meta_name):
        """Read an overlay's ``(state, meta)``; shared staleness checks."""
        target = self.artifact_dir(name)
        meta_path = target / meta_name
        if not meta_path.is_file():
            raise ArtifactError(
                f"artifact {name!r} has no {label} state (missing {meta_name})"
            )
        try:
            meta = json.loads(meta_path.read_text())
        except json.JSONDecodeError as error:
            raise ArtifactError(f"{label} sidecar of {name!r} is corrupted: {error}") from error

        version = meta.get("format_version")
        if version != ARTIFACT_FORMAT_VERSION:
            raise StaleArtifactError(
                f"{label} state of {name!r} has format_version={version}, this "
                f"code reads version {ARTIFACT_FORMAT_VERSION} "
                f"(expected {ARTIFACT_FORMAT_VERSION}, found {version}); "
                f"refit and re-save",
                expected=ARTIFACT_FORMAT_VERSION,
                found=version,
            )

        npz_path = target / npz_name
        if not npz_path.is_file():
            raise ArtifactError(f"artifact {name!r} is missing {npz_name}")
        actual = _file_sha256(npz_path)
        if actual != meta["checksum"]:
            raise ArtifactError(
                f"artifact {name!r}: {npz_name} fails its checksum "
                f"(expected {meta['checksum'][:12]}..., got {actual[:12]}...); "
                f"the file is corrupted or was edited after save"
            )

        state = dict(meta["state"])
        with np.load(npz_path) as data:
            for key in meta["array_keys"]:
                state[key] = data[key]
        # large arrays live in standalone .npy sidecars so they come
        # back as read-only memory maps — checksummed in streaming
        # chunks, never copied into resident memory (pre-split overlays
        # have no mmap_arrays entry and take only the npz path above)
        for key, entry in meta.get("mmap_arrays", {}).items():
            mmap_path = target / entry["file"]
            if not mmap_path.is_file():
                raise ArtifactError(f"artifact {name!r} is missing {entry['file']}")
            actual = _file_sha256(mmap_path)
            if actual != entry["checksum"]:
                raise ArtifactError(
                    f"artifact {name!r}: {entry['file']} fails its checksum "
                    f"(expected {entry['checksum'][:12]}..., got {actual[:12]}...); "
                    f"the file is corrupted or was edited after save"
                )
            state[key] = np.load(mmap_path, mmap_mode="r")
        return state, meta

    def _check_overlay_fingerprint(self, name, model, meta, label, expected_fingerprint):
        """Reject a rebuilt overlay model whose fingerprint drifted."""
        recomputed = model.fingerprint()
        if recomputed != meta["fingerprint"]:
            raise StaleArtifactError(
                f"{label} state of {name!r} is stale: its fingerprint no "
                f"longer matches the persisted state "
                f"(expected {recomputed}, found {meta['fingerprint']}); "
                f"refit and re-save",
                expected=recomputed,
                found=meta["fingerprint"],
            )
        if expected_fingerprint is not None and expected_fingerprint != recomputed:
            raise StaleArtifactError(
                f"{label} state of {name!r} does not match the requested "
                f"model (expected {expected_fingerprint}, found {recomputed})",
                expected=expected_fingerprint,
                found=recomputed,
            )
        return model

    # -- generic overlay API -------------------------------------------------
    def save_overlay(self, name, kind, model):
        """Persist a fitted model as a ``kind`` overlay on artifact ``name``.

        One entry point for every registered :class:`OverlayKind`
        (:func:`overlay_kinds` lists them): arrays of the model's
        :meth:`get_state` go into ``<kind>.npz``; scalar state, the model
        fingerprint and the npz checksum go into a ``<kind>.json``
        sidecar (written last, like the manifest).
        """
        spec = _overlay_kind(kind)
        return self._save_overlay(name, model, spec.name, spec.npz_name, spec.meta_name)

    def has_overlay(self, name, kind):
        """Whether artifact ``name`` carries a persisted ``kind`` overlay."""
        spec = _overlay_kind(kind)
        return (self.artifact_dir(name) / spec.meta_name).is_file()

    def load_overlay(self, name, kind, expected_fingerprint=None, vae=None, encoder=None):
        """Rebuild the fitted ``kind`` model stored with artifact ``name``.

        ``vae`` re-attaches the CF-VAE a ``latent`` density estimator
        scores through; ``encoder`` the fitted encoder a causal model
        reads its feature layout from (rebuilt from the artifact's own
        manifest when omitted).  Kinds ignore the context arguments they
        do not need.  Error contract matches :meth:`load`:
        :class:`StaleArtifactError` (carrying ``expected``/``found``) on
        version or fingerprint drift, :class:`ArtifactError` on
        missing/corrupt files.
        """
        spec = _overlay_kind(kind)
        state, meta = self._load_overlay(name, spec.name, spec.npz_name, spec.meta_name)
        model = spec.rebuild(self, name, state, vae=vae, encoder=encoder)
        return self._check_overlay_fingerprint(
            name, model, meta, spec.name, expected_fingerprint)

    # -- deprecated per-kind wrappers ----------------------------------------
    def save_density(self, name, model):
        """Deprecated: use ``save_overlay(name, "density", model)``."""
        _deprecated_overlay_method("save_density", 'save_overlay(name, "density", model)')
        return self.save_overlay(name, "density", model)

    def has_density(self, name):
        """Deprecated: use ``has_overlay(name, "density")``."""
        _deprecated_overlay_method("has_density", 'has_overlay(name, "density")')
        return self.has_overlay(name, "density")

    def load_density(self, name, vae=None, expected_fingerprint=None):
        """Deprecated: use ``load_overlay(name, "density", vae=...)``."""
        _deprecated_overlay_method("load_density", 'load_overlay(name, "density")')
        return self.load_overlay(
            name, "density", expected_fingerprint=expected_fingerprint, vae=vae)

    def save_causal(self, name, model):
        """Deprecated: use ``save_overlay(name, "causal", model)``."""
        _deprecated_overlay_method("save_causal", 'save_overlay(name, "causal", model)')
        return self.save_overlay(name, "causal", model)

    def has_causal(self, name):
        """Deprecated: use ``has_overlay(name, "causal")``."""
        _deprecated_overlay_method("has_causal", 'has_overlay(name, "causal")')
        return self.has_overlay(name, "causal")

    def load_causal(self, name, encoder=None, expected_fingerprint=None):
        """Deprecated: use ``load_overlay(name, "causal", encoder=...)``."""
        _deprecated_overlay_method("load_causal", 'load_overlay(name, "causal")')
        return self.load_overlay(
            name, "causal", expected_fingerprint=expected_fingerprint, encoder=encoder)

    def save_ensemble(self, name, ensemble):
        """Deprecated: use ``save_overlay(name, "ensemble", ensemble)``."""
        _deprecated_overlay_method("save_ensemble", 'save_overlay(name, "ensemble", ensemble)')
        return self.save_overlay(name, "ensemble", ensemble)

    def has_ensemble(self, name):
        """Deprecated: use ``has_overlay(name, "ensemble")``."""
        _deprecated_overlay_method("has_ensemble", 'has_overlay(name, "ensemble")')
        return self.has_overlay(name, "ensemble")

    def load_ensemble(self, name, expected_fingerprint=None):
        """Deprecated: use ``load_overlay(name, "ensemble")``."""
        _deprecated_overlay_method("load_ensemble", 'load_overlay(name, "ensemble")')
        return self.load_overlay(name, "ensemble", expected_fingerprint=expected_fingerprint)

    # -- train-or-load ------------------------------------------------------
    def ensure(
        self,
        dataset,
        scale="fast",
        seed=0,
        constraint_kind="unary",
        config=None,
        name=None,
        bundle=None,
        verbose=False,
    ):
        """Warm-start from a fresh artifact or train-and-save a new one.

        Returns ``(pipeline, was_cached)``.  A stale or missing artifact
        is replaced by retraining; a fresh one short-circuits training
        entirely.
        """
        scale = get_scale(scale)
        if config is None:
            config = paper_config(dataset, constraint_kind)
        fingerprint = pipeline_fingerprint(
            dataset,
            scale.instances_for(dataset),
            seed,
            constraint_kind,
            config,
            dataset_schema(dataset),
            scale.blackbox_epochs,
        )
        name = name or self.default_name(dataset, constraint_kind, seed)
        if self.fresh(name, fingerprint):
            return self.load(name, expected_fingerprint=fingerprint), True
        pipeline = train_pipeline(
            dataset,
            scale=scale,
            seed=seed,
            constraint_kind=constraint_kind,
            config=config,
            bundle=bundle,
            verbose=verbose,
        )
        self.save(pipeline, name=name)
        return pipeline, False


def _config_payload(config):
    """JSON-ready dict of a CFTrainingConfig."""
    payload = asdict(config)
    return {
        key: (float(value) if isinstance(value, float) else value)
        for key, value in payload.items()
    }

"""Shared-memory model weights for multi-replica serving.

A scaled-out serving tier runs N warm replicas of the same trained
pipeline.  Loading the artifact store N times would hold N copies of
every weight matrix — the black-box classifier, the CF-VAE and each
hosted overlay's arrays (density reference sets, causal equation
parameters, ensemble member stacks).  This module packs all of those
arrays once into a single :class:`multiprocessing.shared_memory`
segment and hands every replica zero-copy read-only views into it:

* thread-backed replicas bind their module parameters straight onto the
  views (``np.shares_memory`` with the segment holds, pinned by the
  round-trip tests);
* process-backed replicas attach the same segment by name through the
  picklable :meth:`SharedWeights.spec` handle, so even across address
  spaces the weights exist once in physical memory.

The views are read-only on purpose: serving is inference-only, and a
replica accidentally writing through a view would silently corrupt
every other replica.  Anything that must mutate weights (training,
rollover) goes through the artifact store, never through this segment.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SharedWeights",
    "attach_module",
    "attach_pipeline",
    "pipeline_weight_arrays",
]

#: Key prefixes of the two pipeline model families inside a segment.
BLACKBOX_PREFIX = "blackbox/"
CFVAE_PREFIX = "cfvae/"


def _overlay_prefix(kind):
    """Key prefix of one hosted overlay's arrays inside a segment."""
    return f"overlay:{kind}/"


class SharedWeights:
    """One shared-memory segment holding many named float arrays.

    Built with :meth:`publish` (allocates the segment and copies every
    array in exactly once) or :meth:`attach` (maps an existing segment
    by name, e.g. from a worker process).  Views returned by
    :meth:`view` / :meth:`views` are read-only ndarrays backed directly
    by the segment — no copy, ever.
    """

    def __init__(self, segment, manifest, owner):
        self._segment = segment
        self._manifest = manifest
        self._owner = owner
        self._closed = False

    # -- construction --------------------------------------------------------
    @classmethod
    def publish(cls, arrays, name=None):
        """Pack ``{key: ndarray}`` into a fresh shared segment.

        Array bytes are laid out back to back (C-contiguous); the
        manifest records each key's ``(offset, shape, dtype)`` triple so
        :meth:`attach` can rebuild the views in any process from the
        segment name alone.
        """
        from multiprocessing import shared_memory

        manifest = {}
        offset = 0
        packed = {}
        for key in sorted(arrays):
            array = np.ascontiguousarray(arrays[key])
            manifest[key] = (offset, array.shape, array.dtype.str)
            packed[key] = array
            offset += array.nbytes
        segment = shared_memory.SharedMemory(
            create=True, size=max(offset, 1), name=name)
        for key, (start, _shape, _dtype) in manifest.items():
            array = packed[key]
            target = np.ndarray(
                array.shape, dtype=array.dtype, buffer=segment.buf,
                offset=start)
            target[...] = array
        return cls(segment, manifest, owner=True)

    @classmethod
    def attach(cls, spec):
        """Map an existing segment from a :meth:`spec` handle."""
        from multiprocessing import shared_memory

        name, manifest = spec
        manifest = {
            key: (int(offset), tuple(shape), str(dtype))
            for key, (offset, shape, dtype) in manifest.items()
        }
        segment = shared_memory.SharedMemory(name=name)
        try:
            # attaching registers the segment with this process's
            # resource tracker, which would unlink it out from under the
            # owner at interpreter shutdown; only the publisher owns the
            # segment's lifetime
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker layout varies
            pass
        return cls(segment, manifest, owner=False)

    def spec(self):
        """Picklable ``(segment name, manifest)`` handle for :meth:`attach`."""
        return (
            self._segment.name,
            {
                key: (offset, list(shape), dtype)
                for key, (offset, shape, dtype) in self._manifest.items()
            },
        )

    # -- access --------------------------------------------------------------
    def keys(self):
        """Sorted array keys stored in the segment."""
        return sorted(self._manifest)

    def view(self, key):
        """Zero-copy read-only ndarray view of one stored array."""
        offset, shape, dtype = self._manifest[key]
        array = np.ndarray(
            tuple(shape), dtype=np.dtype(dtype), buffer=self._segment.buf,
            offset=offset)
        array.flags.writeable = False
        return array

    def views(self, prefix=""):
        """``{key: view}`` for every key under ``prefix`` (stripped)."""
        return {
            key[len(prefix):]: self.view(key)
            for key in self._manifest
            if key.startswith(prefix)
        }

    @property
    def nbytes(self):
        """Total packed payload size in bytes (one copy, shared by all)."""
        return sum(
            int(np.prod(shape)) * np.dtype(dtype).itemsize
            for _offset, shape, dtype in self._manifest.values()
        )

    def owns_buffer_of(self, array):
        """Whether ``array``'s memory lives inside this segment."""
        probe = np.ndarray(
            (self._segment.size,), dtype=np.uint8, buffer=self._segment.buf)
        return np.shares_memory(probe, array)

    # -- lifecycle -----------------------------------------------------------
    def close(self):
        """Release this handle; the owner also frees the segment itself."""
        if self._closed:
            return
        self._closed = True
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # already unlinked by another owner
                pass
        try:
            self._segment.close()
        except BufferError:
            # replica modules still hold views into the segment; the
            # mapping is released when they are garbage collected, and
            # the unlink above already freed the name
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def pipeline_weight_arrays(pipeline, overlays=None):
    """Every array a serving replica needs, keyed for one shared segment.

    Black-box and CF-VAE parameters come from the modules'
    ``state_dict`` (frozen parameters included); each hosted overlay
    contributes the array entries of its persistable ``get_state``.
    """
    explainer = pipeline.explainer
    arrays = {
        BLACKBOX_PREFIX + key: value
        for key, value in explainer.blackbox.state_dict().items()
    }
    arrays.update({
        CFVAE_PREFIX + key: value
        for key, value in explainer.generator.vae.state_dict().items()
    })
    for kind, model in (overlays or {}).items():
        if model is None:
            continue
        state = model.get_state()
        arrays.update({
            _overlay_prefix(kind) + key: value
            for key, value in state.items()
            if isinstance(value, np.ndarray)
        })
    return arrays


def attach_module(module, shared, prefix):
    """Rebind ``module``'s parameters onto a segment's read-only views.

    After this, the module holds NO private copy of its weights: every
    parameter's ``.data`` is a view into the shared segment.  The
    parameter set must match the segment's keys under ``prefix`` exactly
    (same names, same shapes) — a drifted module raises instead of
    silently serving half-shared weights.
    """
    views = shared.views(prefix)
    parameters = dict(module.named_parameters(include_frozen=True))
    missing = set(parameters) - set(views)
    unexpected = set(views) - set(parameters)
    if missing or unexpected:
        raise KeyError(
            f"shared weights under {prefix!r} do not match the module: "
            f"missing={sorted(missing)}, unexpected={sorted(unexpected)}")
    for name, tensor in parameters.items():
        view = views[name]
        if view.shape != tensor.data.shape:
            # checked for every parameter before rebinding any, so a
            # drifted module is left untouched rather than half-shared
            raise ValueError(
                f"shape mismatch for {prefix}{name}: segment has "
                f"{view.shape}, module has {tensor.data.shape}")
    for name, tensor in parameters.items():
        tensor.data = views[name]
    return module


def attach_pipeline(pipeline, shared):
    """Bind a pipeline's black-box and CF-VAE onto a shared segment."""
    attach_module(pipeline.explainer.blackbox, shared, BLACKBOX_PREFIX)
    attach_module(pipeline.explainer.generator.vae, shared, CFVAE_PREFIX)
    return pipeline

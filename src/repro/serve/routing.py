"""Consistent-hash request routing for the scaled serving tier.

Replica-local LRU caches only pay off if the same request keeps landing
on the same replica.  Random or round-robin dispatch spreads a hot row's
repeats over all N replicas, multiplying its cache footprint by N and
dividing every replica's hit rate; consistent hashing instead gives each
replica a stable shard of the key space, so aggregate cache capacity
*grows* with the replica count instead of being wasted on duplicates.

Keys are the serving tier's natural cache identity: the service's
composite ``pipeline:engine:strategy:density:causal:ensemble``
fingerprint plus the encoded row bytes and the desired class — exactly
the triple the replica-local :class:`~repro.serve.cache.LRUResultCache`
keys on.  Hashing the fingerprint into the key means two pools serving
different configurations shard independently.

The ring is the classic construction: every replica owns ``points``
pseudo-random positions on a 64-bit circle (its virtual nodes), and a
key routes to the first replica position at or after the key's own hash.
Scaling from N to N+1 replicas therefore moves only ~1/(N+1) of the keys
— warm caches survive a resize — which :mod:`tests.serve` pins.
"""

from __future__ import annotations

import bisect
import hashlib

import numpy as np

__all__ = ["ConsistentHashRing", "request_key"]


def _hash64(data):
    """Stable 64-bit hash of ``bytes`` (blake2b, seed-free)."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big")


def request_key(fingerprint, row, desired=None):
    """Routing key bytes for one request against one serving config.

    ``desired=None`` (flip the prediction) hashes differently from an
    explicit class, mirroring the cache key — the two can resolve to
    different explanations, so they may legitimately live on different
    replicas.
    """
    row = np.ascontiguousarray(row, dtype=np.float64)
    target = b"flip" if desired is None else str(int(desired)).encode()
    return fingerprint.encode() + b":" + target + b":" + row.tobytes()


class ConsistentHashRing:
    """Hash ring mapping request keys onto a fixed set of nodes.

    Parameters
    ----------
    nodes:
        Hashable node identities (the pool uses replica indices).
    points:
        Virtual nodes per physical node; more points smooth the shard
        sizes at the cost of a larger (still tiny) ring.
    """

    def __init__(self, nodes, points=64):
        nodes = list(nodes)
        if not nodes:
            raise ValueError("ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"duplicate nodes in {nodes!r}")
        points = int(points)
        if points < 1:
            raise ValueError(f"points must be >= 1, got {points}")
        self.nodes = nodes
        self.points = points
        ring = []
        for node in nodes:
            for index in range(points):
                ring.append((_hash64(f"{node!r}#{index}".encode()), node))
        ring.sort()
        self._positions = [position for position, _node in ring]
        self._owners = [node for _position, node in ring]

    def __len__(self):
        return len(self.nodes)

    def node_for(self, key):
        """Node owning ``key`` (bytes): first ring position clockwise."""
        index = bisect.bisect_right(self._positions, _hash64(key))
        if index == len(self._positions):  # wrap past the top of the circle
            index = 0
        return self._owners[index]

    def distribution(self, keys):
        """``{node: count}`` of how ``keys`` shard across the ring."""
        counts = {node: 0 for node in self.nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts

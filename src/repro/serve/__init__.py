"""Persistent explanation serving: artifact store + warm-start service.

Turns the one-shot paper pipeline (train -> explain -> exit) into a
servable system:

* :mod:`repro.serve.pipeline` -- the shared build/train code both the
  experiment harness and the serving path use (``train_pipeline``).
* :mod:`repro.serve.persist` -- the shared :class:`Persistable`
  state/fingerprint contract every storable model family implements,
  and the one :func:`fingerprint_state` hashing recipe behind it.
* :mod:`repro.serve.store` -- :class:`ArtifactStore`, versioned on-disk
  persistence of trained pipelines with fingerprinted manifests, plus
  the generic overlay registry (``save_overlay`` / ``load_overlay``)
  for the model state persisted next to them.
* :mod:`repro.serve.service` -- :class:`ExplanationService`, warm-start
  batch serving with an LRU result cache and single-row micro-batching.
* :mod:`repro.serve.cache` -- the LRU cache primitive.
"""

from .cache import LRUResultCache
from .persist import Persistable, fingerprint_state
from .pipeline import (
    TrainedPipeline,
    load_bundle,
    pipeline_fingerprint,
    train_pipeline,
    train_shared_blackbox,
)
from .service import ExplainTicket, ExplanationService
from .store import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    ArtifactStore,
    OverlayKind,
    StaleArtifactError,
    overlay_kinds,
    register_overlay_kind,
)

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactError",
    "ArtifactStore",
    "ExplainTicket",
    "ExplanationService",
    "LRUResultCache",
    "OverlayKind",
    "Persistable",
    "StaleArtifactError",
    "TrainedPipeline",
    "fingerprint_state",
    "load_bundle",
    "overlay_kinds",
    "pipeline_fingerprint",
    "register_overlay_kind",
    "train_pipeline",
    "train_shared_blackbox",
]

"""Persistent explanation serving: artifact store + warm-start service.

Turns the one-shot paper pipeline (train -> explain -> exit) into a
servable system:

* :mod:`repro.serve.pipeline` -- the shared build/train code both the
  experiment harness and the serving path use (``train_pipeline``).
* :mod:`repro.serve.persist` -- the shared :class:`Persistable`
  state/fingerprint contract every storable model family implements,
  and the one :func:`fingerprint_state` hashing recipe behind it.
* :mod:`repro.serve.store` -- :class:`ArtifactStore`, versioned on-disk
  persistence of trained pipelines with fingerprinted manifests, plus
  the generic overlay registry (``save_overlay`` / ``load_overlay``)
  for the model state persisted next to them.
* :mod:`repro.serve.service` -- :class:`ExplanationService`, warm-start
  batch serving with an LRU result cache and single-row micro-batching.
* :mod:`repro.serve.cache` -- the thread-safe LRU cache primitive.
* :mod:`repro.serve.scale` -- the horizontally scaled tier:
  :class:`WorkerPool` (N warm replicas, one shared pipeline, one
  compiled plan) behind :class:`AsyncExplanationService` (asyncio
  request coalescing).
* :mod:`repro.serve.shm` -- shared-memory model weights, one physical
  copy across every replica.
* :mod:`repro.serve.routing` -- consistent-hash request routing that
  keeps replica-local caches hot as the pool scales.
"""

from .cache import LRUResultCache
from .persist import Persistable, fingerprint_state
from .pipeline import (
    TrainedPipeline,
    load_bundle,
    pipeline_fingerprint,
    train_pipeline,
    train_shared_blackbox,
)
from .routing import ConsistentHashRing, request_key
from .scale import AsyncExplanationService, WorkerPool
from .service import ExplainTicket, ExplanationService, PendingTicketError
from .shm import (
    SharedWeights,
    attach_module,
    attach_pipeline,
    pipeline_weight_arrays,
)
from .store import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    ArtifactStore,
    OverlayKind,
    StaleArtifactError,
    overlay_kinds,
    register_overlay_kind,
)

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactError",
    "ArtifactStore",
    "AsyncExplanationService",
    "ConsistentHashRing",
    "ExplainTicket",
    "ExplanationService",
    "LRUResultCache",
    "OverlayKind",
    "PendingTicketError",
    "Persistable",
    "SharedWeights",
    "StaleArtifactError",
    "TrainedPipeline",
    "WorkerPool",
    "attach_module",
    "attach_pipeline",
    "fingerprint_state",
    "load_bundle",
    "overlay_kinds",
    "pipeline_fingerprint",
    "register_overlay_kind",
    "request_key",
    "train_pipeline",
    "train_shared_blackbox",
]

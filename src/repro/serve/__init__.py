"""Persistent explanation serving: artifact store + warm-start service.

Turns the one-shot paper pipeline (train -> explain -> exit) into a
servable system:

* :mod:`repro.serve.pipeline` -- the shared build/train code both the
  experiment harness and the serving path use (``train_pipeline``).
* :mod:`repro.serve.store` -- :class:`ArtifactStore`, versioned on-disk
  persistence of trained pipelines with fingerprinted manifests.
* :mod:`repro.serve.service` -- :class:`ExplanationService`, warm-start
  batch serving with an LRU result cache and single-row micro-batching.
* :mod:`repro.serve.cache` -- the LRU cache primitive.
"""

from .cache import LRUResultCache
from .pipeline import (
    TrainedPipeline,
    load_bundle,
    pipeline_fingerprint,
    train_pipeline,
    train_shared_blackbox,
)
from .service import ExplainTicket, ExplanationService
from .store import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    ArtifactStore,
    StaleArtifactError,
)

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactError",
    "ArtifactStore",
    "ExplainTicket",
    "ExplanationService",
    "LRUResultCache",
    "StaleArtifactError",
    "TrainedPipeline",
    "load_bundle",
    "pipeline_fingerprint",
    "train_pipeline",
    "train_shared_blackbox",
]

"""Shared persistence contract for hosted overlay models.

Three engine-hostable layers persist themselves through the artifact
store's overlay machinery: density estimators (``repro.density``),
causal models (``repro.causal``) and black-box ensembles
(``repro.models.ensemble``).  Each grew the same three methods by
copy-paste — a flat ``get_state`` dict of arrays and scalars, a
``from_state`` rebuild, and a ``fingerprint`` hashing that state for
staleness checks.  This module is the single home of that contract:

* :class:`Persistable` — the structural protocol all three layers
  satisfy (and anything else that wants to ride the store's generic
  overlay registry must satisfy),
* :func:`fingerprint_state` — the one fingerprint implementation the
  three layers now delegate to.  Arrays are hashed by content, scalars
  canonically JSON-encoded, and the digest truncated to 16 hex chars —
  byte-identical to the historical per-layer implementations, so every
  persisted sidecar fingerprint written before this module existed
  still validates.

The module is a leaf on purpose (stdlib + numpy only): the layers that
implement the protocol import it lazily, so no import cycle forms
between ``repro.serve`` and the model packages the store rebuilds.
"""

from __future__ import annotations

import hashlib
import json
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["Persistable", "fingerprint_state"]


@runtime_checkable
class Persistable(Protocol):
    """Structural contract of a store-persistable overlay model.

    Implementations expose a flat state dict (ndarray and plain-scalar
    values only — the store splits them into an ``.npz`` and a JSON
    sidecar), a classmethod rebuild from that dict, and a deterministic
    fingerprint over it.  The protocol is structural: density, causal
    and ensemble models satisfy it without inheriting from a shared
    base, and ``isinstance(model, Persistable)`` checks membership at
    runtime.
    """

    def get_state(self) -> dict:
        """Flat state dict: ndarray / plain-scalar values only."""
        ...

    @classmethod
    def from_state(cls, state, *args, **kwargs):
        """Rebuild a fitted model from :meth:`get_state` output."""
        ...

    def fingerprint(self) -> str:
        """Deterministic hash of the fitted state, for caches and the store."""
        ...


def fingerprint_state(state, excludes=()):
    """Deterministic 16-hex-char hash of a flat model-state dict.

    Arrays are hashed by content (SHA-256 over the contiguous bytes),
    every other value is carried verbatim into a canonically sorted
    JSON payload, and the payload's SHA-256 digest is truncated to 16
    characters.  ``excludes`` names state keys left out of the hash
    (derived or presentation-only state that cannot change the model's
    outputs).

    This is the exact algorithm ``DensityModel.fingerprint``,
    ``CausalModel.fingerprint`` and ``BlackBoxEnsemble.fingerprint``
    each hand-rolled before it was extracted here — two models agree on
    a fingerprint exactly when they would produce the same outputs, and
    fingerprints persisted by the historical implementations remain
    byte-identical under this one.
    """
    payload = {}
    for key, value in state.items():
        if key in excludes:
            continue
        if isinstance(value, np.ndarray):
            payload[key] = hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest()
        else:
            payload[key] = value
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

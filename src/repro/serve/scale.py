"""Horizontally scaled serving: worker pool + coalescing async front.

``ExplanationService`` is one warm process; this module turns it into a
fleet.  Three pieces compose:

* :class:`WorkerPool` — N warm replicas over ONE shared trained
  pipeline.  The leader replica warm-starts from the
  :class:`~repro.serve.store.ArtifactStore` through the standard
  ``warm_start(overlays={...})`` contract; siblings wrap the same
  pipeline object and adopt the leader's compiled execution state
  (runner, core strategy, compiled plan) — so the pool compiles ONE
  plan, not N.  With ``shared_weights=True`` every model array lives in
  one :class:`~repro.serve.shm.SharedWeights` segment and replicas hold
  zero-copy views.  Requests shard across replicas by
  :class:`~repro.serve.routing.ConsistentHashRing` over the composite
  cache fingerprint plus row bytes, so each replica's LRU cache owns a
  stable slice of the key space and aggregate cache capacity grows with
  the replica count.
* backend seam — ``backend="thread"`` (default) drives each replica's
  service on a pool thread in-process; ``backend="process"`` forks one
  worker process per replica (weights stay shared through the shm
  segment) and speaks to it over a pipe.  Both backends answer through
  the same replica protocol, so everything above the seam is identical.
* :class:`AsyncExplanationService` — an asyncio front for single-row
  traffic.  ``await front.explain(row)`` enqueues the request, coalesces
  arrivals for ``coalesce_window`` seconds (or until ``max_batch``),
  then drains the batch through the pool's submit/flush micro-batcher
  off the event loop; every request resolves as a future.  A request
  that is not resolved within its ``timeout`` raises the same
  :class:`~repro.serve.service.PendingTicketError` a never-flushed
  synchronous ticket raises.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..core.result import CFBatchResult
from .routing import ConsistentHashRing, request_key
from .service import ExplanationService, PendingTicketError
from .shm import SharedWeights, attach_pipeline, pipeline_weight_arrays

__all__ = ["AsyncExplanationService", "WorkerPool"]


class _ThreadReplica:
    """One replica served in-process on pool threads."""

    def __init__(self, service, flush_kwargs):
        self.service = service
        self._flush_kwargs = flush_kwargs
        # serializes submit/flush rounds: without it, two concurrent
        # flush_rows calls could interleave so one call's flush captures
        # the other's freshly submitted tickets and returns before they
        # resolve
        self._lock = threading.Lock()

    def explain_batch(self, rows, desired):
        result = self.service.explain_batch(rows, desired)
        return result.x_cf, result.predicted, result.feasible

    def flush_rows(self, rows, desired):
        with self._lock:
            tickets = [
                self.service.submit(row, int(target))
                for row, target in zip(rows, desired)
            ]
            self.service.flush(**self._flush_kwargs)
        return [ticket.result() for ticket in tickets]

    def stats(self):
        return self.service.stats

    def close(self):
        pass


def _replica_worker(connection, service, flush_kwargs):
    """Request loop of one forked replica process."""
    import traceback

    while True:
        try:
            message = connection.recv()
        except EOFError:
            break
        op = message[0]
        if op == "close":
            break
        try:
            if op == "explain":
                result = service.explain_batch(message[1], message[2])
                payload = (result.x_cf, result.predicted, result.feasible)
            elif op == "flush":
                tickets = [
                    service.submit(row, int(target))
                    for row, target in zip(message[1], message[2])
                ]
                service.flush(**flush_kwargs)
                payload = [ticket.result() for ticket in tickets]
            elif op == "stats":
                payload = service.stats
            else:
                raise ValueError(f"unknown replica op {op!r}")
            connection.send(("ok", payload))
        except Exception:
            connection.send(("error", traceback.format_exc()))
    connection.close()


class _ProcessReplica:
    """One replica served by a forked worker process over a pipe.

    Forked from the fully warm parent, so the replica starts serving
    without reloading anything; the shared-memory weight segment keeps
    the model arrays physically shared across address spaces.
    """

    def __init__(self, context, service, flush_kwargs):
        self._parent_conn, child_conn = context.Pipe()
        self._process = context.Process(
            target=_replica_worker,
            args=(child_conn, service, flush_kwargs),
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._lock = threading.Lock()

    def _call(self, *message):
        with self._lock:
            self._parent_conn.send(message)
            status, payload = self._parent_conn.recv()
        if status == "error":
            raise RuntimeError(f"replica process failed:\n{payload}")
        return payload

    def explain_batch(self, rows, desired):
        return self._call("explain", rows, desired)

    def flush_rows(self, rows, desired):
        return self._call("flush", rows, desired)

    def stats(self):
        return self._call("stats")

    def close(self):
        try:
            with self._lock:
                self._parent_conn.send(("close",))
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=5.0)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()
            self._process.join(timeout=5.0)
        self._parent_conn.close()


class WorkerPool:
    """N warm serving replicas behind consistent-hash request routing.

    Parameters
    ----------
    store, name:
        The :class:`~repro.serve.store.ArtifactStore` and artifact the
        leader replica warm-starts from (full staleness/corruption
        checking applies).
    n_replicas:
        Replica count; each replica owns a private LRU cache of
        ``cache_size`` rows and a stable consistent-hash shard.
    backend:
        ``"thread"`` (default) or ``"process"`` — the one seam between
        in-process replicas and forked worker processes.
    overlays, strategy, engine, plan_backend, cache_size,
    density_weight, density_candidates, robust_quorum:
        Forwarded to :meth:`ExplanationService.warm_start` for the
        leader; siblings replicate the exact configuration and share the
        leader's hosted model objects.
    shared_weights:
        Publish every model array (black-box, CF-VAE, overlay arrays)
        into one shared-memory segment and bind all replicas to
        zero-copy views (default).  ``False`` keeps plain per-pipeline
        arrays (still one copy on the thread backend, copy-on-write on
        the process backend).
    ring_points:
        Virtual nodes per replica on the hash ring.
    flush_kwargs:
        Keyword arguments for each replica's ``flush`` (e.g.
        ``{"n_candidates": 8}`` on the core path).
    """

    def __init__(
        self,
        store,
        name,
        n_replicas=2,
        backend="thread",
        overlays=None,
        strategy=None,
        engine="staged",
        plan_backend="numpy",
        cache_size=4096,
        density_weight=1.0,
        density_candidates=8,
        robust_quorum=0.5,
        shared_weights=True,
        ring_points=64,
        flush_kwargs=None,
    ):
        if backend not in ("thread", "process"):
            raise ValueError(
                f'backend must be "thread" or "process", got {backend!r}')
        n_replicas = int(n_replicas)
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        self.backend = backend
        self.n_replicas = n_replicas
        self._flush_kwargs = dict(flush_kwargs or {})

        leader = ExplanationService.warm_start(
            store,
            name,
            cache_size=cache_size,
            strategy=strategy,
            overlays=overlays,
            density_weight=density_weight,
            density_candidates=density_candidates,
            robust_quorum=robust_quorum,
            engine=engine,
            plan_backend=plan_backend,
        )
        self.shared = None
        if shared_weights:
            hosted = {
                "density": leader.density,
                "causal": leader.causal,
                "ensemble": leader.ensemble,
            }
            self.shared = SharedWeights.publish(
                pipeline_weight_arrays(leader.pipeline, hosted))
            attach_pipeline(leader.pipeline, self.shared)

        services = [leader]
        for _ in range(1, n_replicas):
            sibling = ExplanationService(
                leader.pipeline,
                cache_size=cache_size,
                strategy=leader.strategy,
                density=leader.density,
                density_weight=density_weight,
                density_candidates=density_candidates,
                causal=leader.causal,
                ensemble=leader.ensemble,
                robust_quorum=robust_quorum,
                engine=engine,
                plan_backend=plan_backend,
            )
            sibling.adopt_execution_from(leader)
            services.append(sibling)

        #: The pool's composite cache fingerprint — also forces the
        #: leader's runner/plan to exist BEFORE process replicas fork,
        #: so the pool compiles once and every fork inherits it.
        self.fingerprint = leader.cache_fingerprint
        self._template = leader

        if backend == "thread":
            self.replicas = [
                _ThreadReplica(service, self._flush_kwargs)
                for service in services
            ]
        else:
            import multiprocessing

            if "fork" not in multiprocessing.get_all_start_methods():
                raise RuntimeError(
                    'backend="process" needs the fork start method (the '
                    "forked replica inherits the warm pipeline); use "
                    'backend="thread" on this platform')
            context = multiprocessing.get_context("fork")
            self.replicas = [
                _ProcessReplica(context, service, self._flush_kwargs)
                for service in services
            ]
        self.ring = ConsistentHashRing(range(n_replicas), points=ring_points)
        self._executor = ThreadPoolExecutor(
            max_workers=n_replicas, thread_name_prefix="repro-pool")
        self._closed = False

    # -- routing -------------------------------------------------------------
    def route(self, row, desired=None):
        """Replica index owning one ``(row, desired)`` request."""
        return self.ring.node_for(request_key(self.fingerprint, row, desired))

    def _assign(self, rows, desired):
        """Per-row replica assignment for a resolved batch."""
        return np.array(
            [self.route(rows[i], int(desired[i])) for i in range(len(rows))],
            dtype=int,
        )

    def _resolve(self, rows, desired):
        rows = self._template._check_rows(rows)
        if desired is not None and not np.isscalar(desired):
            # per-row specs may mix None ("flip") with explicit classes
            specs = list(desired)
            if len(specs) == len(rows) and any(s is None for s in specs):
                resolved = np.asarray(
                    [-1 if s is None else int(s) for s in specs])
                flipped = 1 - self._template.explainer.blackbox.predict(rows)
                return rows, np.where(resolved < 0, flipped, resolved)
        return rows, self._template._resolve_desired(rows, desired)

    # -- batch serving -------------------------------------------------------
    def explain_batch(self, rows, desired=None):
        """Explain many rows across the pool; returns a :class:`CFBatchResult`.

        The batch is partitioned by consistent-hash routing, every
        shard dispatches to its replica concurrently, and the results
        reassemble in request order.
        """
        rows, desired = self._resolve(rows, desired)
        assignment = self._assign(rows, desired)

        n_rows, width = rows.shape
        x_cf = np.empty((n_rows, width))
        predicted = np.empty(n_rows, dtype=int)
        feasible = np.empty(n_rows, dtype=bool)

        futures = {}
        for node in self.ring.nodes:
            indices = np.flatnonzero(assignment == node)
            if len(indices):
                futures[node] = (
                    indices,
                    self._executor.submit(
                        self.replicas[node].explain_batch,
                        rows[indices], desired[indices]),
                )
        for indices, future in futures.values():
            part_cf, part_predicted, part_feasible = future.result()
            x_cf[indices] = part_cf
            predicted[indices] = part_predicted
            feasible[indices] = part_feasible

        return CFBatchResult(
            x=rows,
            x_cf=x_cf,
            desired=desired,
            predicted=predicted,
            valid=predicted == desired,
            feasible=feasible,
            encoder=self._template.encoder,
        )

    # -- micro-batched single-row serving -------------------------------------
    def flush_rows(self, rows, desired=None):
        """Answer coalesced single-row requests through submit/flush.

        The async front's drain path: each replica receives its routed
        shard as one submit storm plus ONE flush, all replicas work
        concurrently, and the per-request result dicts come back in
        request order.
        """
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim == 1:
            rows = rows.reshape(1, -1)
        rows, desired = self._resolve(rows, desired)
        assignment = self._assign(rows, desired)

        results = [None] * len(rows)
        futures = {}
        for node in self.ring.nodes:
            indices = np.flatnonzero(assignment == node)
            if len(indices):
                futures[node] = (
                    indices,
                    self._executor.submit(
                        self.replicas[node].flush_rows,
                        rows[indices], desired[indices]),
                )
        for indices, future in futures.values():
            for position, result in zip(indices, future.result()):
                results[position] = result
        return results

    # -- introspection --------------------------------------------------------
    def stats(self):
        """Pool-level aggregation of every replica's serving counters.

        Returns ``{"per_replica": [...], "aggregate": {...}}``; each
        per-replica dict gains derived ``hit_rate`` and
        ``mean_batch_size`` fields for dashboards (and the serve-demo
        CLI table).
        """
        per_replica = []
        for index, replica in enumerate(self.replicas):
            counters = dict(replica.stats())
            lookups = counters["cache_hits"] + counters["cache_misses"]
            counters["replica"] = index
            # rows_served counts batch-path rows, rows_coalesced counts
            # flush-path rows; a request went through exactly one of them
            counters["requests"] = (
                counters["rows_served"] + counters["rows_coalesced"])
            counters["hit_rate"] = (
                counters["cache_hits"] / lookups if lookups else 0.0)
            counters["mean_batch_size"] = (
                counters["rows_coalesced"] / counters["flushes"]
                if counters["flushes"] else 0.0)
            per_replica.append(counters)

        total_rows = sum(c["rows_served"] for c in per_replica)
        total_coalesced = sum(c["rows_coalesced"] for c in per_replica)
        total_hits = sum(c["cache_hits"] for c in per_replica)
        total_misses = sum(c["cache_misses"] for c in per_replica)
        total_flushes = sum(c["flushes"] for c in per_replica)
        lookups = total_hits + total_misses
        aggregate = {
            "replicas": self.n_replicas,
            "backend": self.backend,
            "requests": total_rows + total_coalesced,
            "rows_served": total_rows,
            "rows_coalesced": total_coalesced,
            "flushes": total_flushes,
            "cache_hits": total_hits,
            "cache_misses": total_misses,
            "hit_rate": total_hits / lookups if lookups else 0.0,
            "mean_batch_size": (
                total_coalesced / total_flushes if total_flushes else 0.0),
            "shared_weight_bytes": (
                self.shared.nbytes if self.shared is not None else 0),
        }
        return {"per_replica": per_replica, "aggregate": aggregate}

    # -- lifecycle -----------------------------------------------------------
    def close(self):
        """Shut down replicas, the dispatch executor and the shm segment."""
        if self._closed:
            return
        self._closed = True
        for replica in self.replicas:
            replica.close()
        self._executor.shutdown(wait=True)
        if self.shared is not None:
            self.shared.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


class AsyncExplanationService:
    """Asyncio front coalescing single-row requests into pool flushes.

    Parameters
    ----------
    pool:
        The :class:`WorkerPool` (or any object with ``flush_rows`` and
        ``stats``) answering the coalesced batches.
    coalesce_window:
        Seconds to hold the first request of a batch while more arrive.
    max_batch:
        Drain immediately once this many requests are queued.
    """

    def __init__(self, pool, coalesce_window=0.002, max_batch=256):
        coalesce_window = float(coalesce_window)
        if coalesce_window < 0:
            raise ValueError(
                f"coalesce_window must be >= 0, got {coalesce_window}")
        max_batch = int(max_batch)
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.pool = pool
        self.coalesce_window = coalesce_window
        self.max_batch = max_batch
        self._queue = []
        self._drain_task = None
        self._wake = None
        self.requests = 0
        self.flushes = 0
        self.rows_coalesced = 0

    async def explain(self, row, desired=None, timeout=None):
        """Explain one row; resolves when its coalesced batch flushes.

        Returns the ticket-result dict (``x_cf``, ``desired``,
        ``predicted``, ``valid``, ``feasible``, ...).  With ``timeout``,
        a request still pending after that many seconds raises
        :class:`PendingTicketError` — the asynchronous face of reading a
        never-flushed ticket.
        """
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        row = np.asarray(row, dtype=np.float64).reshape(-1)
        self._queue.append((row, desired, future))
        self.requests += 1
        if self._drain_task is None or self._drain_task.done():
            self._wake = asyncio.Event()
            self._drain_task = loop.create_task(
                self._drain_after(self.coalesce_window, self._wake))
        if len(self._queue) >= self.max_batch:
            self._wake.set()
        if timeout is None:
            return await future
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            raise PendingTicketError(
                f"request was not resolved within {timeout}s: its "
                f"coalesced batch has not flushed yet (window "
                f"{self.coalesce_window}s) — raise the timeout or shrink "
                f"the coalesce window") from None

    async def explain_many(self, rows, desired=None):
        """Explain many rows concurrently through the coalescing front."""
        specs = [None] * len(rows) if desired is None else list(desired)
        return await asyncio.gather(
            *(self.explain(row, spec) for row, spec in zip(rows, specs)))

    async def _drain_after(self, delay, wake):
        if delay > 0:
            try:
                await asyncio.wait_for(wake.wait(), delay)
            except asyncio.TimeoutError:
                pass
        # swap the queue and clear the task slot BEFORE the blocking
        # dispatch, so requests arriving mid-flush arm the next drain
        batch, self._queue = self._queue, []
        self._drain_task = None
        if not batch:
            return
        rows = np.stack([entry[0] for entry in batch])
        desired = [entry[1] for entry in batch]
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                None, self.pool.flush_rows, rows, desired)
        except Exception as error:
            for _row, _spec, future in batch:
                if not future.done():
                    future.set_exception(error)
            return
        self.flushes += 1
        self.rows_coalesced += len(batch)
        for (_row, _spec, future), result in zip(batch, results):
            # a timed-out awaiter cancelled its future; skip it
            if not future.done():
                future.set_result(result)

    async def drain(self):
        """Flush any queued requests now (don't wait out the window)."""
        task = self._drain_task
        if task is not None and not task.done():
            self._wake.set()
            await task

    @property
    def stats(self):
        """Front counters plus the pool's per-replica aggregation."""
        counters = {
            "requests": self.requests,
            "flushes": self.flushes,
            "rows_coalesced": self.rows_coalesced,
            "mean_batch_size": (
                self.rows_coalesced / self.flushes if self.flushes else 0.0),
            "queued": len(self._queue),
        }
        return {"front": counters, "pool": self.pool.stats()}

    async def aclose(self):
        """Flush stragglers and fail anything left unresolved."""
        await self.drain()
        for _row, _spec, future in self._queue:
            if not future.done():
                future.set_exception(PendingTicketError(
                    "async front closed before this request's batch "
                    "was flushed"))
        self._queue = []

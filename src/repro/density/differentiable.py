"""Differentiable density surrogates for the in-objective training term.

The estimators in :mod:`repro.density.estimators` are graph-free scoring
machines — perfect as post-hoc filters, useless inside the CF-VAE's
objective where the density cost must backpropagate into the decoder.
This module provides the two :mod:`repro.nn`-backed surrogates the
six-part loss uses (ROADMAP item 5):

* :class:`DifferentiableKde` — a Gaussian KDE over a subsampled
  reference population in encoded input space.  ``penalty`` runs the
  same whitened-distance + logsumexp math as
  :class:`repro.density.estimators.GaussianKdeDensity`, but as autograd
  ops on the candidate Tensor, so the negative mean log-density pulls
  decoded counterfactuals toward dense regions.
* :class:`LatentSoftMinDensity` — a soft-min k-NN distance in the
  CF-VAE's latent space.  The reference rows are re-encoded with the
  *current* encoder weights each call (graph-free, eval mode), while the
  candidate batch flows through the graph path of ``vae.encode`` — the
  differentiable twin of
  :class:`repro.density.estimators.LatentDensity`'s neighbour distance.

Both implement the full :class:`repro.density.base.DensityModel`
protocol (``fit`` / ``score`` / ``get_state`` / ``fingerprint``), so the
artifact store and overlay registry treat them like every other
estimator; on top of that they expose ``penalty(x_cf, desired) ->
Tensor``, the hook :class:`repro.core.losses.FourPartLoss` calls.
"""

from __future__ import annotations

import numpy as np

from ..nn import as_tensor
from ..nn.losses import logsumexp
from ..utils.validation import check_2d
from .base import DensityModel

__all__ = ["DifferentiableKde", "LatentSoftMinDensity", "build_inloss_density"]


def _subsample(reference, max_reference, seed):
    """Deterministic without-replacement subsample, sorted for stability."""
    reference = check_2d(reference, "reference")
    if len(reference) <= max_reference:
        return reference
    rng = np.random.default_rng(seed)
    keep = np.sort(rng.choice(len(reference), size=max_reference, replace=False))
    return reference[keep]


class DifferentiableKde(DensityModel):
    """Gaussian KDE as autograd ops over a bounded reference sample.

    Fitting subsamples the reference to ``max_reference`` rows (the term
    is evaluated every training step, so the reference must stay small)
    and derives per-feature Scott's-rule bandwidths exactly like the
    post-hoc :class:`~repro.density.estimators.GaussianKdeDensity`,
    scaled by ``bandwidth_scale``.  ``score`` is the graph-free twin of
    ``penalty`` (same math, per-row costs), used by tests and the
    perfbench acceptance thresholds.
    """

    kind = "kde_diff"

    def __init__(self, bandwidth_scale=1.0, max_reference=256, seed=0):
        if bandwidth_scale <= 0:
            raise ValueError(f"bandwidth_scale must be positive, got {bandwidth_scale}")
        if max_reference < 1:
            raise ValueError(f"max_reference must be >= 1, got {max_reference}")
        self.bandwidth_scale = float(bandwidth_scale)
        self.max_reference = int(max_reference)
        self.seed = int(seed)
        self.reference_ = None
        self.bandwidth_ = None
        self._whitened = None
        self._ref_norms = None
        self._log_norm = None

    # -- fitting -------------------------------------------------------
    def fit(self, reference):
        # _subsample's check_2d rejects empty references with a ValueError
        reference = _subsample(reference, self.max_reference, self.seed)
        n, d = reference.shape
        sigma = reference.std(axis=0)
        sigma = np.where(sigma > 1e-12, sigma, 1.0)
        self.bandwidth_ = sigma * n ** (-1.0 / (d + 4)) * self.bandwidth_scale
        self.reference_ = reference
        self._whitened = reference / self.bandwidth_
        self._ref_norms = (self._whitened ** 2).sum(axis=1)
        self._log_norm = float(
            np.log(n) + np.log(self.bandwidth_).sum() + 0.5 * d * np.log(2.0 * np.pi))
        return self

    @property
    def n_reference(self):
        return 0 if self.reference_ is None else len(self.reference_)

    def _require_fitted(self):
        if self.reference_ is None:
            raise RuntimeError("density surrogate is not fitted; call fit() first")

    # -- differentiable term -------------------------------------------
    def penalty(self, x_cf, desired=None):
        """Negative mean log-density of the candidate batch (scalar Tensor).

        ``desired`` is accepted for interface parity with the latent
        surrogate and ignored — the KDE reference is already the
        desired-class population.
        """
        self._require_fitted()
        x_cf = as_tensor(x_cf)
        whitened = x_cf * (1.0 / self.bandwidth_)
        sq = ((whitened ** 2).sum(axis=1, keepdims=True)
              - (whitened @ self._whitened.T) * 2.0
              + self._ref_norms)
        exponents = sq.clip_min(0.0) * -0.5
        log_density = logsumexp(exponents, axis=1) - self._log_norm
        return -log_density.mean()

    def score(self, candidates):
        """Graph-free per-row cost (negative log-density), lower = denser."""
        self._require_fitted()
        candidates = check_2d(candidates, "candidates")
        whitened = candidates / self.bandwidth_
        sq = ((whitened ** 2).sum(axis=1, keepdims=True)
              - 2.0 * (whitened @ self._whitened.T)
              + self._ref_norms)
        exponents = -0.5 * np.maximum(sq, 0.0)
        peak = exponents.max(axis=1, keepdims=True)
        log_density = (peak.squeeze(1)
                       + np.log(np.exp(exponents - peak).sum(axis=1))
                       - self._log_norm)
        return -log_density

    # -- persistence ---------------------------------------------------
    def get_state(self):
        self._require_fitted()
        return {
            "kind": self.kind,
            "bandwidth_scale": self.bandwidth_scale,
            "max_reference": self.max_reference,
            "seed": self.seed,
            "reference": self.reference_,
        }

    @classmethod
    def from_state(cls, state):
        model = cls(bandwidth_scale=state["bandwidth_scale"],
                    max_reference=state["max_reference"], seed=state["seed"])
        # the persisted reference is already the fit-time subsample, so
        # re-fitting re-derives identical bandwidths deterministically
        return model.fit(np.asarray(state["reference"], dtype=np.float64))


class LatentSoftMinDensity(DensityModel):
    """Soft-min latent k-NN distance as a differentiable density cost.

    The candidate batch is encoded through the VAE's *graph* path (so
    gradients reach the encoder and, through the decode→re-encode loop,
    the decoder); the reference sample is re-encoded graph-free under
    eval mode every call, because its latent coordinates move as the
    encoder trains.  The per-row cost is the temperature-smoothed
    minimum squared latent distance to any reference row::

        cost(z) = -tau * logsumexp(-||z - z_ref||^2 / tau)

    which approaches the hard nearest-neighbour distance as ``tau -> 0``
    while staying C^1 for the finite-difference gradient checks.
    """

    kind = "latent_soft"
    #: the encoder is re-attached on load, like LatentDensity
    fingerprint_excludes = ()

    def __init__(self, vae=None, desired_class=1, temperature=0.05,
                 max_reference=256, seed=0):
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        if max_reference < 1:
            raise ValueError(f"max_reference must be >= 1, got {max_reference}")
        self.vae = vae
        self.desired_class = int(desired_class)
        self.temperature = float(temperature)
        self.max_reference = int(max_reference)
        self.seed = int(seed)
        self.reference_ = None

    # -- fitting -------------------------------------------------------
    def fit(self, reference):
        if self.vae is None:
            raise ValueError("latent density surrogate requires a vae")
        reference = _subsample(reference, self.max_reference, self.seed)
        self.reference_ = reference
        return self

    @property
    def n_reference(self):
        return 0 if self.reference_ is None else len(self.reference_)

    def _require_fitted(self):
        if self.reference_ is None:
            raise RuntimeError("density surrogate is not fitted; call fit() first")

    def _latent_reference(self):
        """Reference latents under the *current* encoder weights.

        Runs graph-free in eval mode so the reference encoding neither
        allocates autograd nodes nor consumes the VAE's dropout RNG;
        the training flag is restored afterwards.
        """
        was_training = self.vae.training
        self.vae.eval()
        labels = np.full(len(self.reference_), float(self.desired_class))
        mu, _ = self.vae.encode_array(self.reference_, labels)
        if was_training:
            self.vae.train()
        return mu

    # -- differentiable term -------------------------------------------
    def penalty(self, x_cf, desired=None):
        """Mean soft-min squared latent distance to the reference (Tensor)."""
        self._require_fitted()
        x_cf = as_tensor(x_cf)
        if desired is None:
            labels = np.full(x_cf.shape[0], float(self.desired_class))
        else:
            labels = np.asarray(desired, dtype=np.float64)
        mu, _ = self.vae.encode(x_cf, labels)
        ref = self._latent_reference()
        sq = ((mu ** 2).sum(axis=1, keepdims=True)
              - (mu @ ref.T) * 2.0
              + (ref ** 2).sum(axis=1))
        soft_min = logsumexp(sq.clip_min(0.0) * (-1.0 / self.temperature),
                             axis=1) * -self.temperature
        return soft_min.mean()

    def score(self, candidates):
        """Graph-free per-row soft-min latent distance (lower = denser)."""
        self._require_fitted()
        candidates = check_2d(candidates, "candidates")
        was_training = self.vae.training
        self.vae.eval()
        labels = np.full(len(candidates), float(self.desired_class))
        mu, _ = self.vae.encode_array(candidates, labels)
        if was_training:
            self.vae.train()
        ref = self._latent_reference()
        sq = ((mu ** 2).sum(axis=1, keepdims=True)
              - 2.0 * (mu @ ref.T)
              + (ref ** 2).sum(axis=1))
        sq = np.maximum(sq, 0.0)
        scaled = -sq / self.temperature
        peak = scaled.max(axis=1, keepdims=True)
        return -self.temperature * (
            peak.squeeze(1) + np.log(np.exp(scaled - peak).sum(axis=1)))

    # -- persistence ---------------------------------------------------
    def get_state(self):
        self._require_fitted()
        return {
            "kind": self.kind,
            "desired_class": self.desired_class,
            "temperature": self.temperature,
            "max_reference": self.max_reference,
            "seed": self.seed,
            "reference": self.reference_,
        }

    @classmethod
    def from_state(cls, state, vae=None):
        model = cls(vae=vae, desired_class=state["desired_class"],
                    temperature=state["temperature"],
                    max_reference=state["max_reference"], seed=state["seed"])
        return model.fit(np.asarray(state["reference"], dtype=np.float64))


def build_inloss_density(config, vae=None, desired_class=1):
    """Construct the unfitted surrogate a :class:`DensityLossConfig` names.

    The factory :meth:`repro.core.generator.CFVAEGenerator.prepare_inloss`
    and the explainer's fit path call; ``vae``/``desired_class`` only
    matter for the ``latent`` kind.
    """
    if config.kind == "kde":
        return DifferentiableKde(bandwidth_scale=config.bandwidth_scale,
                                 max_reference=config.max_reference,
                                 seed=config.seed)
    if config.kind == "latent":
        return LatentSoftMinDensity(vae=vae, desired_class=desired_class,
                                    temperature=config.temperature,
                                    max_reference=config.max_reference,
                                    seed=config.seed)
    raise KeyError(f"unknown in-loss density kind {config.kind!r}")

"""The ``DensityModel`` contract every estimator and consumer shares.

Density is the paper's third pillar: among feasible counterfactuals,
prefer one sitting in a *dense region* of feasible examples (Figure 3).
Before this layer existed the stack estimated density three independent
ways — the selection module, FACE and the manifold diagnostics each
built their own ``cKDTree`` — and neither the engine's Table IV metrics
nor the serving layer knew density existed at all.

:class:`DensityModel` is the one batch-first interface they all share:

* ``fit(reference)`` — index a reference population once,
* ``score(candidates)`` — a per-row *region-sparsity cost* (lower means
  denser), shape ``(n,)``,
* ``score_tiled(candidates)`` — the compiled sweep path: a full
  ``(n_rows, n_candidates, d)`` candidate tensor scored in ONE backend
  query (mirroring ``CompiledConstraintSet``'s tiled evaluation), with
  :meth:`DensityModel.score_tiled_loop` kept as the per-row parity
  reference,
* ``get_state`` / ``from_state`` — a flat, array-or-scalar state dict
  the artifact store persists, plus a :meth:`DensityModel.fingerprint`
  over it so stale density state is rejected exactly like stale model
  weights.

``build_density`` is the single factory the selector, the engine
runner, the scenario registry and the serving layer call.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["DENSITY_NAMES", "DensityModel", "build_density", "density_from_state"]

#: Estimator names the factory accepts.
DENSITY_NAMES = ("knn", "kde", "latent")


class DensityModel(ABC):
    """Batch-first density estimator over a fitted reference population.

    Scores are *costs*: lower means the candidate sits in a denser
    region of the reference population.  Every estimator keeps that
    direction so ``proximity + weight * density`` trade-offs compose the
    same way regardless of the backend.
    """

    #: Registry name of the estimator (``knn`` / ``kde`` / ``latent``).
    kind = "density"

    #: State keys that shape performance but never the scores; excluded
    #: from :meth:`fingerprint` so two estimators agree exactly when
    #: they would produce the same scores.
    fingerprint_excludes = ()

    @abstractmethod
    def fit(self, reference):
        """Index a ``(n_reference, d)`` population; returns ``self``."""

    @abstractmethod
    def score(self, candidates):
        """Region-sparsity cost per row of a ``(n, d)`` matrix (lower = denser)."""

    @property
    @abstractmethod
    def n_reference(self):
        """Rows in the fitted reference population (0 when unfitted)."""

    # -- tiled sweep scoring -------------------------------------------------
    def score_tiled(self, candidates):
        """Score a full ``(n_rows, n_candidates, d)`` sweep in one query.

        The compiled path: the sweep is flattened once and handed to the
        backend as a single batch, so a density-aware selection over
        ``n * m`` candidates costs one tree/KDE query instead of ``n``.
        For per-point backends (the k-NN tree) values are bit-identical
        to :meth:`score_tiled_loop`; estimators that run matmuls (KDE,
        latent encoding) are numerically equivalent but may differ at
        float precision because BLAS blocking varies with batch shape.
        """
        candidates = _check_3d(candidates)
        n, m, d = candidates.shape
        return self.score(candidates.reshape(n * m, d)).reshape(n, m)

    def score_tiled_loop(self, candidates):
        """Per-row reference for :meth:`score_tiled` (parity + benchmarks).

        This is the shape of the pre-density-layer code: one backend
        query per input row's candidate set.  Only parity tests and the
        perfbench should call it.
        """
        candidates = _check_3d(candidates)
        return np.stack([self.score(row_candidates) for row_candidates in candidates])

    # -- persistence ---------------------------------------------------------
    @abstractmethod
    def get_state(self):
        """Flat state dict: ``kind`` plus ndarray / plain-scalar values."""

    @classmethod
    @abstractmethod
    def from_state(cls, state):
        """Rebuild a fitted estimator from :meth:`get_state` output."""

    def fingerprint(self):
        """Deterministic hash of the fitted state, for caches and the store.

        Delegates to the shared :func:`repro.serve.persist.fingerprint_state`
        contract (arrays hashed by content, scalars canonically
        JSON-encoded), so two estimators agree exactly when they would
        produce the same scores.
        """
        from ..serve.persist import fingerprint_state

        return fingerprint_state(self.get_state(), self.fingerprint_excludes)


def _check_3d(candidates):
    """Validate a candidate sweep tensor; returns it as float64."""
    candidates = np.asarray(candidates, dtype=np.float64)
    if candidates.ndim != 3:
        raise ValueError(
            f"candidate sweep must be (n_rows, n_candidates, d), got shape {candidates.shape}"
        )
    return candidates


def build_density(name, k_neighbors=10, bandwidth=None, vae=None, desired_class=1):
    """Construct an unfitted estimator by registry name.

    Parameters
    ----------
    name:
        One of :data:`DENSITY_NAMES`.
    k_neighbors:
        Neighbourhood size for the ``knn`` estimator (and the latent
        estimator's inner k-NN).
    bandwidth:
        Optional per-feature bandwidth override for ``kde`` (defaults to
        Scott's rule at fit time).
    vae:
        Trained :class:`repro.models.ConditionalVAE` — required by the
        ``latent`` estimator, ignored otherwise.
    desired_class:
        Class label the ``latent`` estimator conditions its encoder on.
    """
    from .estimators import GaussianKdeDensity, KnnDensity, LatentDensity

    if name == "knn":
        return KnnDensity(k_neighbors=k_neighbors)
    if name == "kde":
        return GaussianKdeDensity(bandwidth=bandwidth)
    if name == "latent":
        return LatentDensity(vae=vae, desired_class=desired_class, k_neighbors=k_neighbors)
    raise KeyError(f"unknown density estimator {name!r}; options: {DENSITY_NAMES}")


def fit_class_density(name, x, y, desired_class, vae=None, k_neighbors=10):
    """Build the named estimator and fit it on one class's rows.

    The shared recipe every density consumer uses for a labelled
    reference population — scenarios, the serve demo and the benchmarks
    all estimate density over the *desired-class* examples (the region a
    counterfactual should land in).  Centralising the slice keeps the
    reference policy in one place.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    desired_class = int(desired_class)
    model = build_density(name, k_neighbors=k_neighbors, vae=vae, desired_class=desired_class)
    return model.fit(x[y == desired_class])


def density_from_state(state, vae=None):
    """Rebuild a fitted estimator from a persisted state dict.

    The inverse of :meth:`DensityModel.get_state`, dispatched on the
    ``kind`` entry.  ``vae`` re-attaches the encoder the ``latent``
    estimator scores through (the store persists density state, never a
    second copy of the VAE weights).
    """
    from .estimators import GaussianKdeDensity, KnnDensity, LatentDensity

    kind = state.get("kind")
    if kind == "knn":
        return KnnDensity.from_state(state)
    if kind == "kde":
        return GaussianKdeDensity.from_state(state)
    if kind == "latent":
        return LatentDensity.from_state(state, vae=vae)
    raise KeyError(f"unknown density state kind {kind!r}; options: {DENSITY_NAMES}")

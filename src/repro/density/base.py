"""The ``DensityModel`` contract every estimator and consumer shares.

Density is the paper's third pillar: among feasible counterfactuals,
prefer one sitting in a *dense region* of feasible examples (Figure 3).
Before this layer existed the stack estimated density three independent
ways — the selection module, FACE and the manifold diagnostics each
built their own ``cKDTree`` — and neither the engine's Table IV metrics
nor the serving layer knew density existed at all.

:class:`DensityModel` is the one batch-first interface they all share:

* ``fit(reference)`` — index a reference population once,
* ``score(candidates)`` — a per-row *region-sparsity cost* (lower means
  denser), shape ``(n,)``,
* ``score_tiled(candidates)`` — the compiled sweep path: a full
  ``(n_rows, n_candidates, d)`` candidate tensor scored in ONE backend
  query (mirroring ``CompiledConstraintSet``'s tiled evaluation), with
  :meth:`DensityModel.score_tiled_loop` kept as the per-row parity
  reference,
* ``get_state`` / ``from_state`` — a flat, array-or-scalar state dict
  the artifact store persists, plus a :meth:`DensityModel.fingerprint`
  over it so stale density state is rejected exactly like stale model
  weights.

``build_density`` is the single factory the selector, the engine
runner, the scenario registry and the serving layer call.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "DENSITY_BACKENDS",
    "DENSITY_NAMES",
    "DEFAULT_TILE_BUDGET",
    "DensityModel",
    "build_density",
    "density_from_state",
    "fit_class_density",
]

#: Estimator names the factory accepts.
DENSITY_NAMES = ("knn", "kde", "latent")

#: Neighbour-query backends the k-NN estimators accept: ``exact`` (the
#: cKDTree — bit-identical to the historical path, always the default)
#: or ``ann`` (the batched IVF index of :mod:`repro.density.ann`, which
#: trades bit-parity for a measured recall@k >= 0.9 contract and scales
#: to million-row reference populations).
DENSITY_BACKENDS = ("exact", "ann")

#: Default element budget (float64 entries, ~128 MiB) for any scoring
#: intermediate proportional to the reference size: the flattened
#: ``score_tiled`` batch and the KDE ``(chunk, n_reference)`` distance
#: matrix are both chunked to stay under it.  Estimators accept a
#: ``tile_budget`` override; ``None`` means this default.
DEFAULT_TILE_BUDGET = 1 << 24


def _tile_chunk_rows(n_reference, tile_budget):
    """Rows per scoring chunk that keep ``rows * n_reference`` in budget."""
    budget = DEFAULT_TILE_BUDGET if tile_budget is None else int(tile_budget)
    return max(1, budget // max(1, int(n_reference)))


class DensityModel(ABC):
    """Batch-first density estimator over a fitted reference population.

    Scores are *costs*: lower means the candidate sits in a denser
    region of the reference population.  Every estimator keeps that
    direction so ``proximity + weight * density`` trade-offs compose the
    same way regardless of the backend.
    """

    #: Registry name of the estimator (``knn`` / ``kde`` / ``latent``).
    kind = "density"

    #: State keys that shape performance but never the scores; excluded
    #: from :meth:`fingerprint` so two estimators agree exactly when
    #: they would produce the same scores.
    fingerprint_excludes = ()

    @abstractmethod
    def fit(self, reference):
        """Index a ``(n_reference, d)`` population; returns ``self``."""

    @abstractmethod
    def score(self, candidates):
        """Region-sparsity cost per row of a ``(n, d)`` matrix (lower = denser)."""

    @property
    @abstractmethod
    def n_reference(self):
        """Rows in the fitted reference population (0 when unfitted)."""

    # -- backend selection ---------------------------------------------------
    def with_backend(self, backend, **ann_params):
        """This estimator on another neighbour backend (see DENSITY_BACKENDS).

        The base implementation only knows the exact path; estimators
        with an approximate index (the k-NN family) override it.
        """
        if backend == "exact":
            return self
        raise ValueError(
            f"{self.kind!r} density has no {backend!r} backend; "
            f"only the k-NN estimators support {DENSITY_BACKENDS[1:]}"
        )

    # -- tiled sweep scoring -------------------------------------------------
    def score_tiled(self, candidates):
        """Score a full ``(n_rows, n_candidates, d)`` sweep, flattened.

        The compiled path: the sweep is flattened once and handed to the
        backend in batches bounded by the estimator's tile budget
        (``tile_budget`` attribute, :data:`DEFAULT_TILE_BUDGET` rows ×
        reference elements by default), so a density-aware selection
        over ``n * m`` candidates costs a handful of bulk queries
        instead of ``n`` — and a 100k-row reference cannot provoke a
        multi-GB intermediate.  Chunking is over *query rows* and every
        estimator's per-row math is row-independent, so the result is
        bit-identical to the historical single-call flattening at any
        budget.  For per-point backends (the k-NN tree) values are also
        bit-identical to :meth:`score_tiled_loop`; estimators that run
        matmuls (KDE, latent encoding) are numerically equivalent but
        may differ at float precision because BLAS blocking varies with
        batch shape.
        """
        candidates = _check_3d(candidates)
        n, m, d = candidates.shape
        flat = candidates.reshape(n * m, d)
        chunk = _tile_chunk_rows(self.n_reference, getattr(self, "tile_budget", None))
        if chunk >= n * m:
            return self.score(flat).reshape(n, m)
        out = np.empty(n * m)
        for start in range(0, n * m, chunk):
            out[start : start + chunk] = self.score(flat[start : start + chunk])
        return out.reshape(n, m)

    def score_tiled_loop(self, candidates):
        """Per-row reference for :meth:`score_tiled` (parity + benchmarks).

        This is the shape of the pre-density-layer code: one backend
        query per input row's candidate set.  Only parity tests and the
        perfbench should call it.
        """
        candidates = _check_3d(candidates)
        return np.stack([self.score(row_candidates) for row_candidates in candidates])

    # -- persistence ---------------------------------------------------------
    @abstractmethod
    def get_state(self):
        """Flat state dict: ``kind`` plus ndarray / plain-scalar values."""

    @classmethod
    @abstractmethod
    def from_state(cls, state):
        """Rebuild a fitted estimator from :meth:`get_state` output."""

    def fingerprint(self):
        """Deterministic hash of the fitted state, for caches and the store.

        Delegates to the shared :func:`repro.serve.persist.fingerprint_state`
        contract (arrays hashed by content, scalars canonically
        JSON-encoded), so two estimators agree exactly when they would
        produce the same scores.
        """
        from ..serve.persist import fingerprint_state

        return fingerprint_state(self.get_state(), self.fingerprint_excludes)


def _check_3d(candidates):
    """Validate a candidate sweep tensor; returns it as float64."""
    candidates = np.asarray(candidates, dtype=np.float64)
    if candidates.ndim != 3:
        raise ValueError(
            f"candidate sweep must be (n_rows, n_candidates, d), got shape {candidates.shape}"
        )
    return candidates


def build_density(name, k_neighbors=10, bandwidth=None, vae=None, desired_class=1,
                  backend="exact", ann_cells=None, ann_probes=None, ann_seed=0):
    """Construct an unfitted estimator by registry name.

    Parameters
    ----------
    name:
        One of :data:`DENSITY_NAMES`.
    k_neighbors:
        Neighbourhood size for the ``knn`` estimator (and the latent
        estimator's inner k-NN).
    bandwidth:
        Optional per-feature bandwidth override for ``kde`` (defaults to
        Scott's rule at fit time).
    vae:
        Trained :class:`repro.models.ConditionalVAE` — required by the
        ``latent`` estimator, ignored otherwise.
    desired_class:
        Class label the ``latent`` estimator conditions its encoder on.
    backend:
        Neighbour backend of the k-NN estimators, one of
        :data:`DENSITY_BACKENDS`.  The ``kde`` estimator has no
        approximate form and rejects anything but ``"exact"``.
    ann_cells / ann_probes / ann_seed:
        :class:`repro.density.ann.AnnIndex` knobs for the ``ann``
        backend (``None`` = the index defaults).
    """
    from .estimators import GaussianKdeDensity, KnnDensity, LatentDensity

    if backend not in DENSITY_BACKENDS:
        raise ValueError(
            f"unknown density backend {backend!r}; options: {DENSITY_BACKENDS}")
    if name == "knn":
        return KnnDensity(k_neighbors=k_neighbors, backend=backend, ann_cells=ann_cells,
                          ann_probes=ann_probes, ann_seed=ann_seed)
    if name == "kde":
        if backend != "exact":
            raise ValueError(
                f"the kde estimator has no {backend!r} backend; "
                f"use knn or latent for approximate neighbour queries")
        return GaussianKdeDensity(bandwidth=bandwidth)
    if name == "latent":
        return LatentDensity(vae=vae, desired_class=desired_class, k_neighbors=k_neighbors,
                             backend=backend, ann_cells=ann_cells, ann_probes=ann_probes,
                             ann_seed=ann_seed)
    raise KeyError(f"unknown density estimator {name!r}; options: {DENSITY_NAMES}")


def fit_class_density(name, x, y, desired_class, vae=None, k_neighbors=10, backend="exact"):
    """Build the named estimator and fit it on one class's rows.

    The shared recipe every density consumer uses for a labelled
    reference population — scenarios, the serve demo and the benchmarks
    all estimate density over the *desired-class* examples (the region a
    counterfactual should land in).  Centralising the slice keeps the
    reference policy in one place.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    desired_class = int(desired_class)
    model = build_density(name, k_neighbors=k_neighbors, vae=vae,
                          desired_class=desired_class, backend=backend)
    return model.fit(x[y == desired_class])


def density_from_state(state, vae=None):
    """Rebuild a fitted estimator from a persisted state dict.

    The inverse of :meth:`DensityModel.get_state`, dispatched on the
    ``kind`` entry.  ``vae`` re-attaches the encoder the ``latent``
    estimator scores through (the store persists density state, never a
    second copy of the VAE weights).
    """
    from .differentiable import DifferentiableKde, LatentSoftMinDensity
    from .estimators import GaussianKdeDensity, KnnDensity, LatentDensity

    kind = state.get("kind")
    if kind == "knn":
        return KnnDensity.from_state(state)
    if kind == "kde":
        return GaussianKdeDensity.from_state(state)
    if kind == "latent":
        return LatentDensity.from_state(state, vae=vae)
    if kind == "kde_diff":
        return DifferentiableKde.from_state(state)
    if kind == "latent_soft":
        return LatentSoftMinDensity.from_state(state, vae=vae)
    raise KeyError(f"unknown density state kind {kind!r}; options: {DENSITY_NAMES}")

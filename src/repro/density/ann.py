"""Approximate nearest-neighbour index for million-row reference sets.

The exact estimators walk a ``cKDTree``, which degrades toward a linear
scan in the ~25-dimensional one-hot encoded feature space the pipeline
actually queries (the curse of dimensionality leaves kd-tree pruning
nothing to prune).  :class:`AnnIndex` is an IVF-style inverted-file
index in pure numpy — no new dependencies:

* **fit** runs a small Lloyd's k-means (on a subsample when the
  reference is large) to place the cell centroids, then assigns every
  reference row to its nearest cell once, in chunked matmul passes.
  The float64 reference matrix itself is kept *by reference* — a
  memory-mapped reference stays memory-mapped; the index adds the
  centroids, the cell-sorted permutation and a cell-sorted float32
  working copy (half the reference's bytes) that the query path scans.
* **query** probes the ``n_probes`` nearest cells per query, then walks
  the probed cells *cell-major*: each cell's member block is a
  contiguous slice of a fit-time reordered working copy, so the
  distances of every query probing that cell come from one small
  ``dgemm`` instead of a per-candidate gather.  Results scatter into a
  padded per-query matrix and the top-k falls out of one
  ``argpartition``.  The working copy is float32 — half the memory
  traffic of the exact path; fine under a recall (not parity) contract.

The contract is *recall, not parity*: callers that need exact answers
keep the kd-tree path, and the benchmark/test suite measures
``recall_at_k`` of this index against it (floor: ≥ 0.9).  Queries whose
probed cells hold fewer than ``k`` members fall back to an exact scan
for just those rows, so ``k >= n_reference`` degrades to brute force
instead of returning padding.
"""

from __future__ import annotations

import numpy as np

__all__ = ["AnnIndex", "recall_at_k"]

#: Element budget (float entries) for the candidate work of one query
#: chunk; bounds peak memory, never the results.
DEFAULT_QUERY_BUDGET = 1 << 23


class AnnIndex:
    """Batched IVF (cell-probing) approximate k-NN over a fixed reference.

    Parameters
    ----------
    n_cells:
        Number of k-means cells; defaults to ``round(3.2 * sqrt(n))``
        at fit time — finer than the classic ``sqrt(n)`` because the
        cell-major scan makes probing cheap and smaller cells cut the
        candidate count per query.
    n_probes:
        Cells probed per query; defaults to 4, widened on small
        references until the candidate pool covers ~``10 * k`` rows.
        More probes buy recall linearly in scan cost.
    train_size:
        k-means fits on at most this many sampled rows; the full
        reference is only touched by the final (chunked) assignment.
    n_iters:
        Lloyd iterations; a handful suffices for cell *routing* (the
        cells need to be balanced, not optimal).
    seed:
        Seed for sampling and centroid init — fitting is deterministic.
    """

    def __init__(self, n_cells=None, n_probes=None, train_size=20000, n_iters=4, seed=0):
        if n_cells is not None and int(n_cells) < 1:
            raise ValueError(f"n_cells must be >= 1, got {n_cells}")
        if n_probes is not None and int(n_probes) < 1:
            raise ValueError(f"n_probes must be >= 1, got {n_probes}")
        self.n_cells = None if n_cells is None else int(n_cells)
        self.n_probes = None if n_probes is None else int(n_probes)
        self.train_size = int(train_size)
        self.n_iters = int(n_iters)
        self.seed = int(seed)
        self.query_budget = DEFAULT_QUERY_BUDGET
        self.reference_ = None
        self.centroids_ = None
        self._order = None
        self._starts = None
        self._counts = None
        self._sorted = None
        self._norms = None
        self._centroids32 = None

    # -- fitting ------------------------------------------------------------
    def fit(self, reference):
        """Build the cell index over a ``(n, d)`` reference; returns ``self``."""
        reference = np.asarray(reference, dtype=np.float64)
        if reference.ndim != 2 or reference.shape[0] < 1:
            raise ValueError(
                f"reference must be a non-empty (n, d) matrix, got shape {reference.shape}")
        n = len(reference)
        n_cells = self.n_cells
        if n_cells is None:
            n_cells = max(1, int(round(3.2 * np.sqrt(n))))
        n_cells = min(n_cells, n)

        rng = np.random.default_rng(self.seed)
        if n > self.train_size:
            train = reference[np.sort(rng.choice(n, self.train_size, replace=False))]
        else:
            train = reference
        centroids = np.array(train[rng.choice(len(train), n_cells, replace=False)])
        for _ in range(self.n_iters):
            assign = _nearest_centroid(train, centroids)
            counts = np.bincount(assign, minlength=n_cells)
            sums = np.zeros_like(centroids)
            for j in range(centroids.shape[1]):
                sums[:, j] = np.bincount(assign, weights=train[:, j], minlength=n_cells)
            occupied = counts > 0
            centroids[occupied] = sums[occupied] / counts[occupied, None]
            n_empty = int((~occupied).sum())
            if n_empty:
                centroids[~occupied] = train[rng.choice(len(train), n_empty)]

        assign = _nearest_centroid(reference, centroids)
        counts = np.bincount(assign, minlength=n_cells)
        order = np.argsort(assign, kind="stable")

        self.reference_ = reference
        self.centroids_ = centroids
        self._centroids32 = centroids.astype(np.float32)
        self._order = order
        self._counts = counts
        self._starts = np.concatenate(([0], np.cumsum(counts)))
        # the query working set: cell-sorted float32 rows + their norms,
        # built in chunks so a memory-mapped reference streams through
        self._sorted = np.empty((n, reference.shape[1]), dtype=np.float32)
        step = max(1, self.query_budget // max(1, reference.shape[1]))
        for start in range(0, n, step):
            self._sorted[start : start + step] = reference[order[start : start + step]]
        self._norms = np.einsum("ij,ij->i", self._sorted, self._sorted)
        return self

    @property
    def n_reference(self):
        """Rows in the indexed reference (0 when unfitted)."""
        return 0 if self.reference_ is None else len(self.reference_)

    def _require_fitted(self):
        if self.reference_ is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted; call fit() first")

    # -- querying -----------------------------------------------------------
    def query(self, points, k):
        """Approximate ``(distances, indices)`` of the ``k`` nearest rows.

        Mirrors ``scipy.spatial.cKDTree.query``: 1-D input drops the
        leading axis, ``k == 1`` drops the trailing axis, and requested
        neighbours beyond ``n_reference`` come back as ``inf`` distance
        with index ``n`` (after the real, exactly-scanned ``n``).
        """
        self._require_fitted()
        k = int(k)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        points = np.asarray(points, dtype=np.float64)
        single = points.ndim == 1
        if single:
            points = points[None, :]
        if points.ndim != 2 or points.shape[1] != self.reference_.shape[1]:
            raise ValueError(
                f"query points must be (q, {self.reference_.shape[1]}), got {points.shape}")

        n = len(self.reference_)
        k_eff = min(k, n)
        n_queries = len(points)
        distances = np.full((n_queries, k), np.inf)
        indices = np.full((n_queries, k), n, dtype=np.intp)

        n_cells = len(self.centroids_)
        n_probes = self.n_probes
        if n_probes is None:
            # small references probe wider so the candidate pool holds
            # at least ~10 * k rows regardless of cell geometry — at
            # large n the per-cell population alone clears this and the
            # flat default wins
            per_cell = max(1.0, n / n_cells)
            wanted = min(10.0 * k_eff, float(n))
            n_probes = max(4, int(np.ceil(wanted / per_cell)))
        n_probes = min(n_probes, n_cells)

        # expected candidate entries per query bound the chunk size
        expected = max(1.0, n_probes * n / n_cells)
        chunk = max(16, int(self.query_budget / expected))
        points32 = points.astype(np.float32)
        for start in range(0, n_queries, chunk):
            stop = min(start + chunk, n_queries)
            d_chunk, i_chunk = self._query_chunk(points32[start:stop], k_eff, n_probes)
            distances[start:stop, :k_eff] = d_chunk
            indices[start:stop, :k_eff] = i_chunk

        if k == 1:
            distances = distances[:, 0]
            indices = indices[:, 0]
        if single:
            distances = distances[0]
            indices = indices[0]
        return distances, indices

    def _query_chunk(self, points, k_eff, n_probes):
        """Top-``k_eff`` over the probed cells of one float32 query chunk."""
        n_queries = len(points)
        cen = self._centroids32
        n_cells = len(cen)
        cen_norms = np.einsum("ij,ij->i", cen, cen)
        cell_sq = cen_norms[None, :] - 2.0 * (points @ cen.T)
        if n_probes < n_cells:
            probe = np.argpartition(cell_sq, n_probes - 1, axis=1)[:, :n_probes]
        else:
            probe = np.broadcast_to(np.arange(n_cells), (n_queries, n_cells))

        lens = self._counts[probe].sum(axis=1)
        short = lens < k_eff
        full = ~short

        out_d = np.empty((n_queries, k_eff))
        out_i = np.empty((n_queries, k_eff), dtype=np.intp)
        if short.any():
            # probed cells cannot seat k neighbours (tiny reference or
            # k ~ n): scan everything for exactly those queries
            d, i = self._brute(points[short], k_eff)
            out_d[short] = d
            out_i[short] = i
        if full.any():
            d, i = self._probe(points[full], probe[full], lens[full], k_eff)
            out_d[full] = d
            out_i[full] = i
        return out_d, out_i

    def _probe(self, points, probe, lens, k_eff):
        """Cell-major scan: one small matmul per probed cell, then top-k.

        Each query owns a row of a padded candidate matrix, with its
        probed cells occupying consecutive column spans (the exclusive
        cumsum of the probed-cell sizes).  Walking cells outer-most
        means every cell's contiguous member block is scored against
        all queries probing it in a single ``(q_c, members)`` matmul —
        no per-candidate gathers anywhere.
        """
        n_queries, n_probes = probe.shape
        counts_q = self._counts[probe]
        col_off = np.cumsum(counts_q, axis=1) - counts_q
        width = int(lens.max())

        # invert (query, slot) -> cell: sort the probe list cell-major
        qid = np.repeat(np.arange(n_queries), n_probes)
        cells = probe.ravel()
        col0 = col_off.ravel()
        order = np.argsort(cells, kind="stable")
        qid, cells, col0 = qid[order], cells[order], col0[order]
        group_ends = np.concatenate((np.flatnonzero(np.diff(cells)) + 1, [len(cells)]))

        # ragged layout of every (query, probed-cell, member) entry —
        # one vectorized pass computes, for each entry, its source row
        # in the cell-sorted reference and its target slot in the padded
        # per-query candidate matrix; the loop below only runs matmuls
        pair_m = self._counts[cells]
        total = int(pair_m.sum())
        within = np.arange(total) - np.repeat(np.cumsum(pair_m) - pair_m, pair_m)
        src = np.repeat(self._starts[cells], pair_m) + within
        tgt = np.repeat(qid * width + col0, pair_m) + within
        entry_q = np.repeat(qid, pair_m)

        buf = np.empty(total, dtype=np.float32)
        cursor = 0
        start = 0
        for end in group_ends:
            cell = cells[start]
            m = int(self._counts[cell])
            if m == 0:
                start = end
                continue
            lo = self._starts[cell]
            qs = qid[start:end]
            block = points[qs] @ self._sorted[lo : lo + m].T
            buf[cursor : cursor + block.size] = block.ravel()
            cursor += block.size
            start = end

        q_norms = np.einsum("ij,ij->i", points, points)
        flat_sq = self._norms[src] + q_norms[entry_q] - 2.0 * buf
        padded = np.full((n_queries, width), np.inf, dtype=np.float32)
        padded.ravel()[tgt] = flat_sq
        padded_idx = np.full((n_queries, width), -1, dtype=np.intp)
        padded_idx.ravel()[tgt] = self._order[src]
        return _top_k(padded, padded_idx, k_eff)

    def _brute(self, points, k_eff):
        """Exact full scan (the shortlist-too-small fallback), float32."""
        q_norms = np.einsum("ij,ij->i", points, points)
        sq = q_norms[:, None] + self._norms[None, :] - 2.0 * (points @ self._sorted.T)
        idx = np.broadcast_to(self._order, sq.shape)
        return _top_k(sq, idx, k_eff)


def _nearest_centroid(rows, centroids, budget=DEFAULT_QUERY_BUDGET):
    """Index of each row's nearest centroid, in chunked matmul passes."""
    cen_norms = np.einsum("ij,ij->i", centroids, centroids)
    out = np.empty(len(rows), dtype=np.intp)
    step = max(1, budget // max(1, len(centroids)))
    for start in range(0, len(rows), step):
        block = np.asarray(rows[start : start + step])
        sq = cen_norms[None, :] - 2.0 * (block @ centroids.T)
        out[start : start + step] = np.argmin(sq, axis=1)
    return out


def _top_k(sq, idx, k_eff):
    """Per-row ``k_eff`` smallest of ``sq`` with their ``idx`` labels, sorted."""
    if k_eff < sq.shape[1]:
        part = np.argpartition(sq, k_eff - 1, axis=1)[:, :k_eff]
        sq = np.take_along_axis(sq, part, axis=1)
        idx = np.take_along_axis(np.asarray(idx), part, axis=1)
    order = np.argsort(sq, axis=1, kind="stable")
    sq = np.take_along_axis(sq, order, axis=1).astype(np.float64)
    idx = np.take_along_axis(np.asarray(idx), order, axis=1)
    return np.sqrt(np.maximum(sq, 0.0)), idx


def recall_at_k(exact_indices, ann_indices):
    """Mean fraction of the exact k-NN sets the ANN result recovered.

    Both arguments are ``(q, k)`` neighbour-index matrices (the second
    return of :meth:`AnnIndex.query` / ``cKDTree.query``).  This is the
    measured contract of the approximate backend — the benchmark and the
    test suite assert it stays at or above 0.9.
    """
    exact_indices = np.atleast_2d(np.asarray(exact_indices))
    ann_indices = np.atleast_2d(np.asarray(ann_indices))
    if exact_indices.shape != ann_indices.shape:
        raise ValueError(
            f"index matrices differ in shape: {exact_indices.shape} vs {ann_indices.shape}")
    hits = sum(
        len(np.intersect1d(exact_row, ann_row))
        for exact_row, ann_row in zip(exact_indices, ann_indices)
    )
    return hits / exact_indices.size

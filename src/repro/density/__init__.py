"""Unified batch-first density subsystem (the paper's third pillar).

One ``DensityModel`` layer powers every density question in the stack:
Figure 3 candidate selection (``DensityCFSelector``), FACE's
density-penalised graph, the engine runner's density-aware selection and
Table IV density column, warm-started serving (density state persisted
by the ``ArtifactStore``) and the ``density=`` scenario variants.  See
``docs/density.md``.
"""

from .ann import AnnIndex, recall_at_k
from .base import (
    DEFAULT_TILE_BUDGET,
    DENSITY_BACKENDS,
    DENSITY_NAMES,
    DensityModel,
    build_density,
    density_from_state,
    fit_class_density,
)
from .differentiable import DifferentiableKde, LatentSoftMinDensity, build_inloss_density
from .estimators import GaussianKdeDensity, KnnDensity, LatentDensity

__all__ = [
    "AnnIndex",
    "DEFAULT_TILE_BUDGET",
    "DENSITY_BACKENDS",
    "DENSITY_NAMES",
    "DensityModel",
    "DifferentiableKde",
    "GaussianKdeDensity",
    "KnnDensity",
    "LatentDensity",
    "LatentSoftMinDensity",
    "build_density",
    "build_inloss_density",
    "density_from_state",
    "fit_class_density",
    "recall_at_k",
]

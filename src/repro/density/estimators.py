"""The three batch-first density estimators.

* :class:`KnnDensity` — mean distance to the k nearest reference
  examples, the exact math ``DensityCFSelector`` always used (the
  selector now delegates here; parity tests pin the scores
  bit-identical).
* :class:`GaussianKdeDensity` — vectorized Gaussian kernel density with
  per-feature Scott bandwidths; the score is the negative log-density.
* :class:`LatentDensity` — k-NN density measured in the CF-VAE latent
  space (Mahajan et al.'s manifold argument): rows are encoded through
  ``ConditionalVAE.encode_array`` and scored by an inner
  :class:`KnnDensity` over the encoded reference.

The neighbour-based estimators carry a ``backend`` switch: ``"exact"``
(the default — a ``cKDTree``, bit-identical to the historical path) or
``"ann"`` (the batched IVF index of :mod:`repro.density.ann`, for
100k–1M-row reference populations, recall-tested rather than
bit-tested).  Backend choice is part of the persisted state and the
fingerprint — two estimators only share caches when they would produce
the same scores.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from ..utils.validation import check_2d
from .ann import AnnIndex
from .base import DENSITY_BACKENDS, DensityModel
from .base import _tile_chunk_rows as _kde_chunk_cap

__all__ = ["GaussianKdeDensity", "KnnDensity", "LatentDensity"]

#: k-NN state keys that only exist when the ANN backend is active; kept
#: out of exact-backend state so exact fingerprints (and old persisted
#: overlays) are byte-for-byte what they were before the backend seam.
_ANN_STATE_KEYS = ("backend", "ann_cells", "ann_probes", "ann_seed")


def _check_backend(backend):
    if backend not in DENSITY_BACKENDS:
        raise ValueError(
            f"unknown density backend {backend!r}; options: {DENSITY_BACKENDS}")
    return backend


class KnnDensity(DensityModel):
    """Mean k-nearest-neighbour distance to the reference population.

    Lower scores mean the candidate sits among more (closer) reference
    examples — the ``meanknn`` term of the Figure 3 selection score.
    ``k`` is clamped to the reference size at query time, so a small
    feasible population degrades gracefully instead of failing.

    ``backend="ann"`` swaps the ``cKDTree`` for the batched
    :class:`repro.density.ann.AnnIndex`; scores then satisfy a measured
    recall contract instead of bit-parity.  The non-active index is
    built lazily, so an ANN estimator can still answer
    ``query(..., backend="exact")`` for recall measurement without
    paying the tree build unless asked.
    """

    kind = "knn"

    def __init__(self, k_neighbors=10, backend="exact", ann_cells=None,
                 ann_probes=None, ann_seed=0, tile_budget=None):
        self.k_neighbors = int(k_neighbors)
        if self.k_neighbors < 1:
            raise ValueError(f"k_neighbors must be >= 1, got {k_neighbors}")
        self.backend = _check_backend(backend)
        self.ann_cells = None if ann_cells is None else int(ann_cells)
        self.ann_probes = None if ann_probes is None else int(ann_probes)
        self.ann_seed = int(ann_seed)
        self.tile_budget = tile_budget
        self.reference_ = None
        self._tree = None
        self._ann = None

    def fit(self, reference):
        reference = check_2d(reference, "reference")
        self.reference_ = reference
        self._tree = None
        self._ann = None
        # build only the active index; the other stays lazy
        if self.backend == "ann":
            self._ann_index()
        else:
            self._exact_tree()
        return self

    @property
    def n_reference(self):
        return 0 if self.reference_ is None else len(self.reference_)

    @property
    def tree_(self):
        """The exact ``cKDTree`` (built lazily; ``None`` when unfitted)."""
        if self.reference_ is None:
            return None
        return self._exact_tree()

    def _require_fitted(self):
        if self.reference_ is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted; call fit() first")

    def _exact_tree(self):
        if self._tree is None:
            self._tree = cKDTree(self.reference_)
        return self._tree

    def _ann_index(self):
        if self._ann is None:
            self._ann = AnnIndex(
                n_cells=self.ann_cells, n_probes=self.ann_probes, seed=self.ann_seed
            ).fit(self.reference_)
        return self._ann

    def query(self, points, k, backend=None):
        """Raw ``(distances, indices)`` k-NN lookup against the reference.

        The shared index access FACE's graph construction and the
        manifold diagnostics use; ``k`` is passed through untouched so
        self-neighbour conventions stay with the caller.  ``backend``
        overrides the estimator's own backend for this one call (the
        recall-measurement path queries both).
        """
        self._require_fitted()
        backend = self.backend if backend is None else _check_backend(backend)
        if backend == "ann":
            return self._ann_index().query(points, k)
        return self._exact_tree().query(points, k=k)

    def score(self, candidates):
        self._require_fitted()
        candidates = check_2d(candidates, "candidates")
        k = min(self.k_neighbors, len(self.reference_))
        distances, _ = self.query(candidates, k)
        if k == 1:
            return distances
        return distances.mean(axis=1)

    def with_backend(self, backend, ann_cells=None, ann_probes=None, ann_seed=None):
        """Same estimator on another backend (re-indexing, never re-scoring)."""
        backend = _check_backend(backend)
        clone = KnnDensity(
            k_neighbors=self.k_neighbors,
            backend=backend,
            ann_cells=self.ann_cells if ann_cells is None else ann_cells,
            ann_probes=self.ann_probes if ann_probes is None else ann_probes,
            ann_seed=self.ann_seed if ann_seed is None else ann_seed,
            tile_budget=self.tile_budget,
        )
        if self.reference_ is not None:
            clone.fit(self.reference_)
        return clone

    def get_state(self):
        self._require_fitted()
        state = {
            "kind": self.kind,
            "k_neighbors": int(self.k_neighbors),
            "reference": self.reference_,
        }
        if self.backend != "exact":
            state["backend"] = self.backend
            state["ann_cells"] = self.ann_cells
            state["ann_probes"] = self.ann_probes
            state["ann_seed"] = int(self.ann_seed)
        return state

    @classmethod
    def from_state(cls, state):
        model = cls(
            k_neighbors=state["k_neighbors"],
            backend=state.get("backend", "exact"),
            ann_cells=state.get("ann_cells"),
            ann_probes=state.get("ann_probes"),
            ann_seed=state.get("ann_seed", 0),
        )
        return model.fit(np.asarray(state["reference"], dtype=np.float64))


class GaussianKdeDensity(DensityModel):
    """Vectorized Gaussian KDE; score is the negative log-density.

    Bandwidths follow Scott's rule per feature
    (``sigma_j * n ** (-1 / (d + 4))``) unless given explicitly;
    constant features fall back to unit scale so the whitening never
    divides by zero.  Scoring is chunked over candidates to bound the
    ``(chunk, n_reference)`` distance matrix — ``chunk_size`` caps the
    rows per pass and the tile budget caps the matrix elements, so a
    100k-row reference never provokes a multi-GB intermediate.
    """

    kind = "kde"
    fingerprint_excludes = ("chunk_size",)

    def __init__(self, bandwidth=None, chunk_size=4096, tile_budget=None):
        # the constructor argument is kept apart from the fitted value so
        # a refit re-derives Scott bandwidths from the NEW reference
        # instead of silently reusing the previous population's scales
        self._given_bandwidth = None if bandwidth is None else np.asarray(bandwidth, np.float64)
        self.bandwidth = None
        self.chunk_size = int(chunk_size)
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.tile_budget = tile_budget
        self.reference_ = None
        self._whitened = None
        self._log_norm = None

    def fit(self, reference):
        reference = check_2d(reference, "reference")
        n, d = reference.shape
        if self._given_bandwidth is None:
            sigma = reference.std(axis=0)
            sigma = np.where(sigma > 1e-12, sigma, 1.0)
            self.bandwidth = sigma * n ** (-1.0 / (d + 4))
        else:
            self.bandwidth = np.broadcast_to(self._given_bandwidth, (d,)).astype(np.float64)
            if np.any(self.bandwidth <= 0):
                raise ValueError("bandwidth entries must be positive")
        self.reference_ = reference
        self._whitened = reference / self.bandwidth
        # log of the Gaussian-product normaliser: n * h_1 ... h_d * (2 pi)^(d/2)
        self._log_norm = np.log(n) + np.log(self.bandwidth).sum() + 0.5 * d * np.log(2.0 * np.pi)
        return self

    @property
    def n_reference(self):
        return 0 if self.reference_ is None else len(self.reference_)

    def _require_fitted(self):
        if self.reference_ is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted; call fit() first")

    def log_density(self, candidates):
        """Log KDE density per candidate row (higher = denser)."""
        self._require_fitted()
        candidates = check_2d(candidates, "candidates")
        whitened = candidates / self.bandwidth
        ref = self._whitened
        ref_norms = (ref**2).sum(axis=1)
        # per-row math is chunk-independent, so tightening the chunk for
        # a big reference changes peak memory and nothing else
        chunk_size = min(
            self.chunk_size, _kde_chunk_cap(len(ref), self.tile_budget))
        out = np.empty(len(whitened))
        for start in range(0, len(whitened), chunk_size):
            chunk = whitened[start : start + chunk_size]
            sq = (chunk**2).sum(axis=1)[:, None] + ref_norms[None, :] - 2.0 * (chunk @ ref.T)
            exponents = -0.5 * np.maximum(sq, 0.0)
            peak = exponents.max(axis=1)
            out[start : start + chunk_size] = peak + np.log(
                np.exp(exponents - peak[:, None]).sum(axis=1)
            )
        return out - self._log_norm

    def score(self, candidates):
        return -self.log_density(candidates)

    def get_state(self):
        self._require_fitted()
        return {
            "kind": self.kind,
            "chunk_size": int(self.chunk_size),
            "bandwidth": self.bandwidth,
            "reference": self.reference_,
        }

    @classmethod
    def from_state(cls, state):
        model = cls(
            bandwidth=np.asarray(state["bandwidth"], dtype=np.float64),
            chunk_size=state["chunk_size"],
        )
        return model.fit(np.asarray(state["reference"], dtype=np.float64))


class LatentDensity(DensityModel):
    """k-NN density in the CF-VAE latent space.

    Rows are mapped to posterior means with the trained encoder
    (``encode_array``, the graph-free fast path) conditioned on
    ``desired_class``, then scored by an inner :class:`KnnDensity` over
    the encoded reference.  Persisted state stores the *latent*
    reference, never VAE weights — :meth:`from_state` re-attaches the
    VAE the artifact store already holds.  The ``backend`` switch is
    forwarded to the inner k-NN, so a latent estimator over a huge
    encoded population can run on the ANN index too.
    """

    kind = "latent"

    def __init__(self, vae=None, desired_class=1, k_neighbors=10, backend="exact",
                 ann_cells=None, ann_probes=None, ann_seed=0):
        self.vae = vae
        self.desired_class = int(desired_class)
        self.inner = KnnDensity(
            k_neighbors=k_neighbors,
            backend=backend,
            ann_cells=ann_cells,
            ann_probes=ann_probes,
            ann_seed=ann_seed,
        )

    @property
    def k_neighbors(self):
        """Neighbourhood size of the inner latent-space k-NN."""
        return self.inner.k_neighbors

    @property
    def backend(self):
        """Backend of the inner latent-space k-NN."""
        return self.inner.backend

    def _encode(self, rows):
        if self.vae is None:
            raise RuntimeError(
                "LatentDensity has no VAE attached; construct with vae= or "
                "rebuild via density_from_state(state, vae=...)"
            )
        rows = check_2d(rows, "rows")
        labels = np.full(len(rows), float(self.desired_class))
        mu, _ = self.vae.encode_array(rows, labels)
        return mu

    def fit(self, reference):
        self.inner.fit(self._encode(reference))
        return self

    @property
    def n_reference(self):
        return self.inner.n_reference

    def score(self, candidates):
        return self.inner.score(self._encode(candidates))

    def with_backend(self, backend, ann_cells=None, ann_probes=None, ann_seed=None):
        """Same estimator on another backend (re-encoding is NOT repeated)."""
        clone = LatentDensity(
            vae=self.vae, desired_class=self.desired_class, k_neighbors=self.k_neighbors)
        clone.inner = self.inner.with_backend(
            backend, ann_cells=ann_cells, ann_probes=ann_probes, ann_seed=ann_seed)
        return clone

    def get_state(self):
        inner_state = self.inner.get_state()
        state = {
            "kind": self.kind,
            "desired_class": int(self.desired_class),
            "k_neighbors": int(inner_state["k_neighbors"]),
            "reference": inner_state["reference"],
        }
        for key in _ANN_STATE_KEYS:
            if key in inner_state:
                state[key] = inner_state[key]
        return state

    @classmethod
    def from_state(cls, state, vae=None):
        model = cls(
            vae=vae,
            desired_class=state["desired_class"],
            k_neighbors=state["k_neighbors"],
            backend=state.get("backend", "exact"),
            ann_cells=state.get("ann_cells"),
            ann_probes=state.get("ann_probes"),
            ann_seed=state.get("ann_seed", 0),
        )
        model.inner.fit(np.asarray(state["reference"], dtype=np.float64))
        return model

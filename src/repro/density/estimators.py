"""The three batch-first density estimators.

* :class:`KnnDensity` — mean distance to the k nearest reference
  examples, the exact math ``DensityCFSelector`` always used (the
  selector now delegates here; parity tests pin the scores
  bit-identical).
* :class:`GaussianKdeDensity` — vectorized Gaussian kernel density with
  per-feature Scott bandwidths; the score is the negative log-density.
* :class:`LatentDensity` — k-NN density measured in the CF-VAE latent
  space (Mahajan et al.'s manifold argument): rows are encoded through
  ``ConditionalVAE.encode_array`` and scored by an inner
  :class:`KnnDensity` over the encoded reference.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from ..utils.validation import check_2d
from .base import DensityModel

__all__ = ["GaussianKdeDensity", "KnnDensity", "LatentDensity"]


class KnnDensity(DensityModel):
    """Mean k-nearest-neighbour distance to the reference population.

    Lower scores mean the candidate sits among more (closer) reference
    examples — the ``meanknn`` term of the Figure 3 selection score.
    ``k`` is clamped to the reference size at query time, so a small
    feasible population degrades gracefully instead of failing.
    """

    kind = "knn"

    def __init__(self, k_neighbors=10):
        self.k_neighbors = int(k_neighbors)
        if self.k_neighbors < 1:
            raise ValueError(f"k_neighbors must be >= 1, got {k_neighbors}")
        self.reference_ = None
        self.tree_ = None

    def fit(self, reference):
        reference = check_2d(reference, "reference")
        self.reference_ = reference
        self.tree_ = cKDTree(reference)
        return self

    @property
    def n_reference(self):
        return 0 if self.reference_ is None else len(self.reference_)

    def _require_fitted(self):
        if self.tree_ is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted; call fit() first")

    def query(self, points, k):
        """Raw ``(distances, indices)`` k-NN lookup against the reference.

        The shared tree access FACE's graph construction and the
        manifold diagnostics use; ``k`` is passed through untouched so
        self-neighbour conventions stay with the caller.
        """
        self._require_fitted()
        return self.tree_.query(points, k=k)

    def score(self, candidates):
        self._require_fitted()
        candidates = check_2d(candidates, "candidates")
        k = min(self.k_neighbors, len(self.reference_))
        distances, _ = self.tree_.query(candidates, k=k)
        if k == 1:
            return distances
        return distances.mean(axis=1)

    def get_state(self):
        self._require_fitted()
        return {
            "kind": self.kind,
            "k_neighbors": int(self.k_neighbors),
            "reference": self.reference_,
        }

    @classmethod
    def from_state(cls, state):
        model = cls(k_neighbors=state["k_neighbors"])
        return model.fit(np.asarray(state["reference"], dtype=np.float64))


class GaussianKdeDensity(DensityModel):
    """Vectorized Gaussian KDE; score is the negative log-density.

    Bandwidths follow Scott's rule per feature
    (``sigma_j * n ** (-1 / (d + 4))``) unless given explicitly;
    constant features fall back to unit scale so the whitening never
    divides by zero.  Scoring is chunked over candidates to bound the
    ``(chunk, n_reference)`` distance matrix.
    """

    kind = "kde"
    fingerprint_excludes = ("chunk_size",)

    def __init__(self, bandwidth=None, chunk_size=4096):
        # the constructor argument is kept apart from the fitted value so
        # a refit re-derives Scott bandwidths from the NEW reference
        # instead of silently reusing the previous population's scales
        self._given_bandwidth = None if bandwidth is None else np.asarray(bandwidth, np.float64)
        self.bandwidth = None
        self.chunk_size = int(chunk_size)
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.reference_ = None
        self._whitened = None
        self._log_norm = None

    def fit(self, reference):
        reference = check_2d(reference, "reference")
        n, d = reference.shape
        if self._given_bandwidth is None:
            sigma = reference.std(axis=0)
            sigma = np.where(sigma > 1e-12, sigma, 1.0)
            self.bandwidth = sigma * n ** (-1.0 / (d + 4))
        else:
            self.bandwidth = np.broadcast_to(self._given_bandwidth, (d,)).astype(np.float64)
            if np.any(self.bandwidth <= 0):
                raise ValueError("bandwidth entries must be positive")
        self.reference_ = reference
        self._whitened = reference / self.bandwidth
        # log of the Gaussian-product normaliser: n * h_1 ... h_d * (2 pi)^(d/2)
        self._log_norm = np.log(n) + np.log(self.bandwidth).sum() + 0.5 * d * np.log(2.0 * np.pi)
        return self

    @property
    def n_reference(self):
        return 0 if self.reference_ is None else len(self.reference_)

    def _require_fitted(self):
        if self.reference_ is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted; call fit() first")

    def log_density(self, candidates):
        """Log KDE density per candidate row (higher = denser)."""
        self._require_fitted()
        candidates = check_2d(candidates, "candidates")
        whitened = candidates / self.bandwidth
        ref = self._whitened
        ref_norms = (ref**2).sum(axis=1)
        out = np.empty(len(whitened))
        for start in range(0, len(whitened), self.chunk_size):
            chunk = whitened[start : start + self.chunk_size]
            sq = (chunk**2).sum(axis=1)[:, None] + ref_norms[None, :] - 2.0 * (chunk @ ref.T)
            exponents = -0.5 * np.maximum(sq, 0.0)
            peak = exponents.max(axis=1)
            out[start : start + self.chunk_size] = peak + np.log(
                np.exp(exponents - peak[:, None]).sum(axis=1)
            )
        return out - self._log_norm

    def score(self, candidates):
        return -self.log_density(candidates)

    def get_state(self):
        self._require_fitted()
        return {
            "kind": self.kind,
            "chunk_size": int(self.chunk_size),
            "bandwidth": self.bandwidth,
            "reference": self.reference_,
        }

    @classmethod
    def from_state(cls, state):
        model = cls(
            bandwidth=np.asarray(state["bandwidth"], dtype=np.float64),
            chunk_size=state["chunk_size"],
        )
        return model.fit(np.asarray(state["reference"], dtype=np.float64))


class LatentDensity(DensityModel):
    """k-NN density in the CF-VAE latent space.

    Rows are mapped to posterior means with the trained encoder
    (``encode_array``, the graph-free fast path) conditioned on
    ``desired_class``, then scored by an inner :class:`KnnDensity` over
    the encoded reference.  Persisted state stores the *latent*
    reference, never VAE weights — :meth:`from_state` re-attaches the
    VAE the artifact store already holds.
    """

    kind = "latent"

    def __init__(self, vae=None, desired_class=1, k_neighbors=10):
        self.vae = vae
        self.desired_class = int(desired_class)
        self.inner = KnnDensity(k_neighbors=k_neighbors)

    @property
    def k_neighbors(self):
        """Neighbourhood size of the inner latent-space k-NN."""
        return self.inner.k_neighbors

    def _encode(self, rows):
        if self.vae is None:
            raise RuntimeError(
                "LatentDensity has no VAE attached; construct with vae= or "
                "rebuild via density_from_state(state, vae=...)"
            )
        rows = check_2d(rows, "rows")
        labels = np.full(len(rows), float(self.desired_class))
        mu, _ = self.vae.encode_array(rows, labels)
        return mu

    def fit(self, reference):
        self.inner.fit(self._encode(reference))
        return self

    @property
    def n_reference(self):
        return self.inner.n_reference

    def score(self, candidates):
        return self.inner.score(self._encode(candidates))

    def get_state(self):
        inner_state = self.inner.get_state()
        return {
            "kind": self.kind,
            "desired_class": int(self.desired_class),
            "k_neighbors": int(inner_state["k_neighbors"]),
            "reference": inner_state["reference"],
        }

    @classmethod
    def from_state(cls, state, vae=None):
        model = cls(
            vae=vae,
            desired_class=state["desired_class"],
            k_neighbors=state["k_neighbors"],
        )
        model.inner.fit(np.asarray(state["reference"], dtype=np.float64))
        return model

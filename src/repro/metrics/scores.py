"""Validity, feasibility and sparsity scores (Section IV-D).

* **Validity** — percentage of counterfactuals whose black-box class
  equals the desired class.
* **Feasibility** — percentage of counterfactuals satisfying the logical
  causal constraints (unary or binary set).
* **Sparsity** — mean number of features changed between input and
  counterfactual (lower is better).
"""

from __future__ import annotations

import numpy as np

from ..data.schema import FeatureType

__all__ = ["validity_score", "feasibility_score", "sparsity_score", "changed_features"]


def validity_score(blackbox, x_cf, desired):
    """Percentage of rows the classifier assigns to the desired class."""
    desired = np.asarray(desired, dtype=int)
    if len(desired) == 0:
        return 0.0
    predictions = blackbox.predict(np.asarray(x_cf))
    return float((predictions == desired).mean() * 100.0)


def feasibility_score(constraints, x, x_cf):
    """Percentage of rows satisfying every constraint in the set."""
    return float(constraints.satisfaction_rate(np.asarray(x), np.asarray(x_cf)) * 100.0)


def changed_features(x, x_cf, encoder, continuous_tolerance=0.005):
    """Per-row count of features that differ between input and CF.

    A continuous or binary feature counts as changed when its encoded
    value moved by more than ``continuous_tolerance`` (binary columns
    compare after rounding); a categorical feature counts as changed when
    its argmax category differs.
    """
    x = np.asarray(x)
    x_cf = np.asarray(x_cf)
    counts = np.zeros(len(x))
    for spec in encoder.schema.features:
        block = encoder.feature_slices[spec.name]
        if spec.ftype is FeatureType.CATEGORICAL:
            before = np.argmax(x[:, block], axis=1)
            after = np.argmax(x_cf[:, block], axis=1)
            counts += before != after
        elif spec.ftype is FeatureType.BINARY:
            before = np.round(x[:, block.start])
            after = np.round(x_cf[:, block.start])
            counts += before != after
        else:
            difference = np.abs(x_cf[:, block.start] - x[:, block.start])
            counts += difference > continuous_tolerance
    return counts


def sparsity_score(x, x_cf, encoder, continuous_tolerance=0.005):
    """Mean number of changed features (the paper's sparsity score)."""
    x = np.asarray(x)
    if len(x) == 0:
        return 0.0
    return float(changed_features(x, x_cf, encoder, continuous_tolerance).mean())

"""Per-method evaluation bundle — one Table IV row.

``evaluate_counterfactuals`` computes all five Section IV-D metrics for a
batch of counterfactuals against both constraint models, producing the
:class:`MethodReport` the experiment harness assembles into the Table IV
reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constraints import build_constraints
from .proximity import ProximityStats, categorical_proximity, continuous_proximity
from .scores import feasibility_score, sparsity_score, validity_score

__all__ = ["MethodReport", "evaluate_counterfactuals"]


@dataclass(frozen=True)
class MethodReport:
    """All Table IV columns for one method on one dataset.

    ``feasibility_unary`` / ``feasibility_binary`` may be None when the
    method row reports only one constraint model (as the paper does for
    Mahajan et al. and its own two model variants).
    """

    method: str
    validity: float
    feasibility_unary: float
    feasibility_binary: float
    continuous_proximity: float
    categorical_proximity: float
    sparsity: float
    n_instances: int = 0

    def as_row(self):
        """Cells in the paper's Table IV column order."""
        return [self.method, self.validity, self.feasibility_unary,
                self.feasibility_binary, self.continuous_proximity,
                self.categorical_proximity, self.sparsity]


def evaluate_counterfactuals(method_name, x, x_cf, desired, blackbox, encoder,
                             stats=None, x_train=None, report_kinds=("unary", "binary")):
    """Compute the full metric bundle for one method's counterfactuals.

    Parameters
    ----------
    method_name:
        Row label.
    x, x_cf:
        Encoded inputs and their counterfactuals.
    desired:
        Desired class per row.
    blackbox:
        Classifier for the validity column.
    encoder:
        Dataset encoder (drives proximity/sparsity feature typing).
    stats:
        Fitted :class:`ProximityStats`; built from ``x_train`` when None.
    x_train:
        Training matrix used to fit ``stats`` if not supplied.
    report_kinds:
        Which feasibility columns to fill; others become None.
    """
    x = np.asarray(x)
    x_cf = np.asarray(x_cf)
    if stats is None:
        if x_train is None:
            raise ValueError("provide either fitted stats or x_train")
        stats = ProximityStats(encoder).fit(x_train)

    feasibility = {}
    for kind in ("unary", "binary"):
        if kind in report_kinds:
            constraints = build_constraints(encoder, kind)
            feasibility[kind] = feasibility_score(constraints, x, x_cf)
        else:
            feasibility[kind] = None

    return MethodReport(
        method=method_name,
        validity=validity_score(blackbox, x_cf, desired),
        feasibility_unary=feasibility["unary"],
        feasibility_binary=feasibility["binary"],
        continuous_proximity=continuous_proximity(x, x_cf, encoder, stats),
        categorical_proximity=categorical_proximity(x, x_cf, encoder),
        sparsity=sparsity_score(x, x_cf, encoder),
        n_instances=len(x),
    )

"""Per-method evaluation bundle — one Table IV row.

``evaluate_counterfactuals`` computes all five Section IV-D metrics for a
batch of counterfactuals against both constraint models, producing the
:class:`MethodReport` the experiment harness assembles into the Table IV
reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constraints import build_constraints
from .proximity import ProximityStats, categorical_proximity, continuous_proximity
from .scores import feasibility_score, sparsity_score, validity_score

__all__ = ["MethodReport", "evaluate_counterfactuals"]


@dataclass(frozen=True)
class MethodReport:
    """All Table IV columns for one method on one dataset.

    ``feasibility_unary`` / ``feasibility_binary`` may be None when the
    method row reports only one constraint model (as the paper does for
    Mahajan et al. and its own two model variants).
    ``mean_knn_distance`` is the density column — the mean region-
    sparsity cost of the selected counterfactuals under the engine's
    density model (mean feasible-reference k-NN distance for the default
    estimator) — and is None when no density model was hosted, so the
    paper's original seven-column table is unchanged.
    ``causal_plausibility`` is the causal column — the percentage of
    rows whose *raw* (pre-repair) selected counterfactual was already
    consistent with the engine's hosted
    :class:`repro.causal.CausalModel` (repair distance at most
    ``CAUSAL_TOLERANCE``) — and is likewise None when no causal model
    was hosted.
    ``cross_model_validity`` / ``robust_validity`` are the robustness
    columns under a hosted :class:`repro.models.BlackBoxEnsemble`:
    the mean percentage of ensemble members the selected counterfactuals
    flip, and the percentage of rows whose member agreement clears the
    runner's quorum.  Both are None when no ensemble was hosted, so the
    single-model table is unchanged.
    """

    method: str
    validity: float
    feasibility_unary: float
    feasibility_binary: float
    continuous_proximity: float
    categorical_proximity: float
    sparsity: float
    n_instances: int = 0
    mean_knn_distance: float = None
    causal_plausibility: float = None
    cross_model_validity: float = None
    robust_validity: float = None

    def as_row(self):
        """Cells in the paper's Table IV column order."""
        return [self.method, self.validity, self.feasibility_unary,
                self.feasibility_binary, self.continuous_proximity,
                self.categorical_proximity, self.sparsity]


def evaluate_counterfactuals(method_name, x, x_cf, desired, blackbox, encoder,
                             stats=None, x_train=None, report_kinds=("unary", "binary"),
                             feasibility_report=None, predicted=None,
                             density_scores=None, causal_scores=None,
                             cross_model_scores=None, robust_flags=None):
    """Compute the full metric bundle for one method's counterfactuals.

    Parameters
    ----------
    method_name:
        Row label.
    x, x_cf:
        Encoded inputs and their counterfactuals.
    desired:
        Desired class per row.
    blackbox:
        Classifier for the validity column.
    encoder:
        Dataset encoder (drives proximity/sparsity feature typing).
    stats:
        Fitted :class:`ProximityStats`; built from ``x_train`` when None.
    x_train:
        Training matrix used to fit ``stats`` if not supplied.
    report_kinds:
        Which feasibility columns to fill; others become None.
    feasibility_report:
        Optional precomputed :class:`repro.engine.FeasibilityReport`
        whose rows align with ``x_cf`` (the engine runner passes the
        report of the run being scored): a requested kind whose
        constraints are all in the report is answered from it without
        re-evaluating anything.  Kinds the report does not cover — or
        every kind, when no report is given — fall back to the
        per-constraint loop (the parity reference).  Rates are identical
        either way.
    predicted:
        Optional precomputed black-box classes of ``x_cf``; skips the
        validity-column predict call.
    density_scores:
        Optional per-row density costs of ``x_cf`` under a fitted
        :class:`repro.density.DensityModel` (the engine runner passes
        the scores of the run being evaluated); their mean fills the
        report's ``mean_knn_distance`` column.
    causal_scores:
        Optional per-row causal repair distances under a fitted
        :class:`repro.causal.CausalModel` (the engine runner passes the
        pre-repair distances of the run being evaluated); the fraction
        at most ``CAUSAL_TOLERANCE`` fills the report's
        ``causal_plausibility`` column as a percentage.
    cross_model_scores:
        Optional per-row member-agreement fractions in ``[0, 1]`` under
        a hosted :class:`repro.models.BlackBoxEnsemble` (the engine
        runner passes the agreement of the selected candidates); their
        mean fills ``cross_model_validity`` as a percentage.
    robust_flags:
        Optional per-row booleans marking rows whose agreement cleared
        the runner's quorum; their mean fills ``robust_validity`` as a
        percentage.
    """
    x = np.asarray(x)
    x_cf = np.asarray(x_cf)
    if stats is None:
        if x_train is None:
            raise ValueError("provide either fitted stats or x_train")
        stats = ProximityStats(encoder).fit(x_train)

    names = [] if feasibility_report is None else list(feasibility_report.names)
    feasibility = {}
    for kind in ("unary", "binary"):
        if kind not in report_kinds:
            feasibility[kind] = None
            continue
        members = build_constraints(encoder, kind)
        if all(c.name in names for c in members):
            indices = [names.index(c.name) for c in members]
            feasibility[kind] = feasibility_report.subset_rate(indices) * 100.0
        else:
            feasibility[kind] = feasibility_score(members, x, x_cf)

    if predicted is None:
        validity = validity_score(blackbox, x_cf, desired)
    else:
        # identical semantics to validity_score, minus the predict call
        desired_classes = np.asarray(desired, dtype=int)
        validity = float((np.asarray(predicted) == desired_classes).mean() * 100.0) \
            if len(desired_classes) else 0.0

    return MethodReport(
        method=method_name,
        validity=validity,
        feasibility_unary=feasibility["unary"],
        feasibility_binary=feasibility["binary"],
        continuous_proximity=continuous_proximity(x, x_cf, encoder, stats),
        categorical_proximity=categorical_proximity(x, x_cf, encoder),
        sparsity=sparsity_score(x, x_cf, encoder),
        n_instances=len(x),
        mean_knn_distance=(
            None if density_scores is None
            else float(np.mean(density_scores))),
        causal_plausibility=_causal_plausibility(causal_scores),
        cross_model_validity=_percentage(cross_model_scores),
        robust_validity=_percentage(robust_flags),
    )


def _percentage(values):
    """Mean of per-row scores/flags as a percentage, or None when absent."""
    if values is None:
        return None
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 0.0
    return float(values.mean() * 100.0)


def _causal_plausibility(causal_scores):
    """Percentage of rows whose repair distance is within tolerance."""
    from ..causal import CAUSAL_TOLERANCE

    if causal_scores is None:
        return None
    scores = np.asarray(causal_scores, dtype=np.float64)
    if scores.size == 0:
        return 0.0
    return float((scores <= CAUSAL_TOLERANCE).mean() * 100.0)

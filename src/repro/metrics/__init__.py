"""Evaluation metrics of Section IV-D: validity, feasibility, proximity, sparsity."""

from .proximity import ProximityStats, categorical_proximity, continuous_proximity
from .report import MethodReport, evaluate_counterfactuals
from .scores import changed_features, feasibility_score, sparsity_score, validity_score

__all__ = [
    "validity_score", "feasibility_score", "sparsity_score", "changed_features",
    "ProximityStats", "continuous_proximity", "categorical_proximity",
    "MethodReport", "evaluate_counterfactuals",
]

"""Proximity metrics (paper Eqs. 4 and 5).

* **Continuous proximity** — the negative mean, over counterfactuals, of
  the per-instance continuous distance ``dist_cont``: the sum over
  continuous features of the absolute difference scaled by the feature's
  median absolute deviation (the DiCE convention, which produces the
  magnitudes Table IV reports).
* **Categorical proximity** — the negative mean of the per-instance count
  of categorical features whose category changed.

Both are negated so that *larger is better* (closer), matching the
paper's presentation.
"""

from __future__ import annotations

import numpy as np

from ..data.schema import FeatureType

__all__ = ["ProximityStats", "continuous_proximity", "categorical_proximity"]


class ProximityStats:
    """Per-feature scale statistics fitted on training data.

    The continuous distance divides each feature's difference by its
    median absolute deviation (MAD) computed on the *encoded* training
    matrix, so the metric is scale-free and comparable across features.
    """

    def __init__(self, encoder):
        self.encoder = encoder
        self._mads = None

    def fit(self, x_train):
        """Record MADs of the continuous encoded columns; returns self."""
        x_train = np.asarray(x_train, dtype=np.float64)
        mads = {}
        for spec in self.encoder.schema.continuous:
            column = x_train[:, self.encoder.column_of(spec.name)]
            median = np.median(column)
            mad = np.median(np.abs(column - median))
            mads[spec.name] = float(mad) if mad > 1e-12 else 1.0
        self._mads = mads
        return self

    def mad(self, feature_name):
        """Fitted MAD of one continuous feature."""
        if self._mads is None:
            raise RuntimeError("ProximityStats is not fitted; call fit() first")
        return self._mads[feature_name]


def continuous_proximity(x, x_cf, encoder, stats):
    """Eq. 4: negative mean MAD-scaled L1 distance over continuous features."""
    x = np.asarray(x)
    x_cf = np.asarray(x_cf)
    if len(x) == 0:
        return 0.0
    total = np.zeros(len(x))
    for spec in encoder.schema.continuous:
        column = encoder.column_of(spec.name)
        total += np.abs(x_cf[:, column] - x[:, column]) / stats.mad(spec.name)
    return float(-total.mean())


def categorical_proximity(x, x_cf, encoder):
    """Eq. 5: negative mean count of changed categorical features."""
    x = np.asarray(x)
    x_cf = np.asarray(x_cf)
    if len(x) == 0:
        return 0.0
    changes = np.zeros(len(x))
    for spec in encoder.schema.features:
        if spec.ftype is not FeatureType.CATEGORICAL:
            continue
        block = encoder.feature_slices[spec.name]
        before = np.argmax(x[:, block], axis=1)
        after = np.argmax(x_cf[:, block], axis=1)
        changes += before != after
    return float(-changes.mean())

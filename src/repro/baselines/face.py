"""FACE — Poyiadzi et al. (2020).

"Feasible and Actionable Counterfactual Explanations": instead of
synthesising a new point, FACE returns an *actual training example* of
the desired class that is reachable from the input through a
high-density path.  We implement the kNN-graph variant: training points
are vertices, edges connect k nearest neighbours weighted by
``distance * density penalty``, and the counterfactual for ``x`` is the
endpoint of the cheapest path from ``x``'s neighbourhood to any
confidently-desired-class vertex (found with one multi-source Dijkstra
from a virtual source attached to every target vertex).
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from ..density import KnnDensity
from .base import BaseCFExplainer

__all__ = ["FACEExplainer"]


class FACEExplainer(BaseCFExplainer):
    """Graph-based counterfactual retrieval over the training data.

    Parameters
    ----------
    k_neighbors:
        Graph degree (k of the kNN graph).
    confidence:
        Minimum desired-class probability for a vertex to be a target.
    max_vertices:
        Training points are subsampled to this many vertices to bound
        the graph size (the published method does the same in practice).
    density_weight:
        Strength of the density penalty: edges through sparse regions
        cost ``distance * (1 + density_weight * normalised_length)``.
    density_backend:
        Neighbour backend of the shared vertex index, one of
        :data:`repro.density.DENSITY_BACKENDS`.  ``"exact"`` keeps the
        historical bit-identical graph; ``"ann"`` swaps the graph-degree
        and entry queries onto the batched IVF index for large vertex
        budgets (``max_vertices`` in the 100k+ range).
    """

    name = "face"

    def __init__(self, encoder, blackbox, seed=0, k_neighbors=10,
                 confidence=0.6, max_vertices=2000, density_weight=1.0,
                 density_backend="exact"):
        super().__init__(encoder, blackbox, seed=seed)
        self.k_neighbors = int(k_neighbors)
        self.confidence = float(confidence)
        self.max_vertices = int(max_vertices)
        self.density_weight = float(density_weight)
        self.density_backend = str(density_backend)
        self._vertices = None
        self._density = None
        self._dist_to_target = None
        self._target_of = None
        self._mean_edge = None

    # -- graph construction -------------------------------------------------
    def _edge_weight(self, distances):
        """Density-penalised edge weights (longer = sparser = costlier)."""
        normalised = distances / (self._mean_edge + 1e-12)
        return distances * (1.0 + self.density_weight * normalised)

    def _fit(self, x_train, y_train):
        if len(x_train) > self.max_vertices:
            picked = self.rng.choice(len(x_train), self.max_vertices, replace=False)
            vertices = x_train[picked]
        else:
            vertices = x_train.copy()
        self._vertices = vertices
        # the shared density layer owns the vertex index: the same
        # estimator answers graph-degree queries here, entry queries in
        # _generate and (via density_score) ad-hoc density questions
        self._density = KnnDensity(
            k_neighbors=self.k_neighbors, backend=self.density_backend).fit(vertices)

        n = len(vertices)
        k = min(self.k_neighbors + 1, n)
        distances, neighbors = self._density.query(vertices, k=k)
        distances, neighbors = distances[:, 1:], neighbors[:, 1:]  # drop self
        self._mean_edge = float(distances.mean())

        weights = self._edge_weight(distances)
        rows = np.repeat(np.arange(n), neighbors.shape[1])
        graph = csr_matrix(
            (weights.ravel(), (rows, neighbors.ravel())), shape=(n + 1, n + 1))

        # virtual source (vertex n) linked to every confident target vertex
        probabilities = _desired_proba(self.blackbox, vertices)
        self._per_class_targets = {}
        self._per_class_dist = {}
        self._per_class_pred = {}
        for desired_class in (0, 1):
            confident = probabilities[:, desired_class] >= self.confidence
            targets = np.flatnonzero(confident)
            if len(targets) == 0:  # fall back to the most confident vertex
                targets = np.array([int(np.argmax(probabilities[:, desired_class]))])
            augmented = graph.tolil(copy=True)
            augmented[n, targets] = 1e-9
            augmented = csr_matrix(augmented)
            dist, predecessors = dijkstra(
                augmented, directed=False, indices=n, return_predecessors=True)
            self._per_class_targets[desired_class] = set(int(t) for t in targets)
            self._per_class_dist[desired_class] = dist
            self._per_class_pred[desired_class] = predecessors

    # -- retrieval ----------------------------------------------------------------
    def _endpoint(self, vertex, desired_class):
        """Walk predecessors back towards the virtual source to find the target."""
        predecessors = self._per_class_pred[desired_class]
        targets = self._per_class_targets[desired_class]
        current = vertex
        seen = 0
        while current not in targets:
            parent = predecessors[current]
            if parent < 0 or parent == len(self._vertices) or seen > len(predecessors):
                return current
            current = int(parent)
            seen += 1
        return current

    def density_score(self, x):
        """Mean vertex k-NN distance of ``x`` (the shared estimator's cost)."""
        return self._density.score(x)

    def _generate(self, x, desired):
        k = min(self.k_neighbors, len(self._vertices))
        distances, neighbors = self._density.query(x, k=k)
        if k == 1:
            distances = distances[:, None]
            neighbors = neighbors[:, None]
        out = np.empty_like(x)
        for i in range(len(x)):
            desired_class = int(desired[i])
            entry_costs = self._edge_weight(distances[i])
            totals = entry_costs + self._per_class_dist[desired_class][neighbors[i]]
            if not np.isfinite(totals).any():
                out[i] = self._vertices[neighbors[i][0]]
                continue
            gateway = int(neighbors[i][np.argmin(totals)])
            out[i] = self._vertices[self._endpoint(gateway, desired_class)]
        return out


def _desired_proba(blackbox, x):
    """Stack class-0/class-1 probabilities as columns."""
    p1 = blackbox.predict_proba(x)
    return np.stack([1.0 - p1, p1], axis=1)

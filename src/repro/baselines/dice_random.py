"""DiCE (random mode) — Mothilal et al. (2020).

The paper uses the DiCE library's ``random`` method: sample random
values for a random subset of mutable features, keep candidates the
classifier assigns to the desired class, then greedily sparsify — try to
revert each changed feature back to the original while preserving
validity.  This reproduces that sampling scheme directly on the encoded
representation.
"""

from __future__ import annotations

import numpy as np

from ..data.schema import FeatureType
from .base import BaseCFExplainer

__all__ = ["DiceRandomExplainer"]


class DiceRandomExplainer(BaseCFExplainer):
    """Random-sampling counterfactual search with greedy sparsification.

    Parameters
    ----------
    max_attempts:
        Sampling rounds per instance before giving up (the last sampled
        candidate is returned even if invalid, matching DiCE's behaviour
        of always emitting something).
    features_per_round:
        How many mutable features each random candidate perturbs.
    """

    name = "dice_random"

    def __init__(self, encoder, blackbox, seed=0, max_attempts=60,
                 features_per_round=None):
        super().__init__(encoder, blackbox, seed=seed)
        self.max_attempts = int(max_attempts)
        self._mutable_features = [
            spec for spec in encoder.schema.features if not spec.immutable]
        if features_per_round is None:
            features_per_round = max(1, len(self._mutable_features) // 2)
        self.features_per_round = int(features_per_round)

    def _random_feature_value(self, spec):
        """Sample one encoded value block for a feature, uniformly."""
        if spec.ftype is FeatureType.CONTINUOUS:
            return np.array([self.rng.random()])
        if spec.ftype is FeatureType.BINARY:
            return np.array([float(self.rng.integers(0, 2))])
        block = np.zeros(spec.n_categories)
        block[self.rng.integers(0, spec.n_categories)] = 1.0
        return block

    def _perturb(self, row):
        """Randomly overwrite a subset of mutable features of one row."""
        candidate = row.copy()
        chosen = self.rng.choice(
            len(self._mutable_features),
            size=min(self.features_per_round, len(self._mutable_features)),
            replace=False)
        for index in chosen:
            spec = self._mutable_features[index]
            block = self.encoder.feature_slices[spec.name]
            candidate[block] = self._random_feature_value(spec)
        return candidate

    def _sparsify(self, original, candidate, desired):
        """Greedy DiCE post-hoc sparsification.

        Revert changed features one at a time; keep the reversion when
        the candidate still classifies as ``desired``.
        """
        for spec in self._mutable_features:
            block = self.encoder.feature_slices[spec.name]
            if np.allclose(candidate[block], original[block]):
                continue
            trial = candidate.copy()
            trial[block] = original[block]
            if self.blackbox.predict(trial[None, :])[0] == desired:
                candidate = trial
        return candidate

    def _generate(self, x, desired):
        out = np.empty_like(x)
        for i, row in enumerate(x):
            found = None
            last = row
            for _ in range(self.max_attempts):
                candidate = self._perturb(row)
                last = candidate
                if self.blackbox.predict(candidate[None, :])[0] == desired[i]:
                    found = candidate
                    break
            if found is None:
                out[i] = last
            else:
                out[i] = self._sparsify(row, found, desired[i])
        return out

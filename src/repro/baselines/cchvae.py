"""C-CHVAE — Pawelczyk et al. (2020).

"Learning Model-Agnostic Counterfactual Explanations for Tabular Data":
counterfactual search by *growing spheres in the latent space* of a
(conditional) heterogeneous VAE.  Starting from the encoding of the
input, candidates are sampled in an annulus whose radius grows until a
decoded candidate flips the classifier; the accepted candidate with the
smallest latent displacement wins, which keeps the counterfactual both
proximal and on-manifold ("faithful" in the paper's terms).
"""

from __future__ import annotations

import numpy as np

from ..models import ConditionalVAE, train_reconstruction_vae
from .base import BaseCFExplainer

__all__ = ["CCHVAEExplainer"]


class CCHVAEExplainer(BaseCFExplainer):
    """Growing-sphere latent search in a reconstruction VAE.

    Parameters
    ----------
    n_candidates:
        Samples drawn per radius step.
    initial_radius, radius_step, max_radius:
        Annulus schedule for the latent search.
    vae_epochs:
        Epochs for the underlying reconstruction VAE fit.
    """

    name = "cchvae"

    def __init__(self, encoder, blackbox, seed=0, n_candidates=100,
                 initial_radius=0.1, radius_step=0.1, max_radius=5.0,
                 vae_epochs=50):
        super().__init__(encoder, blackbox, seed=seed)
        self.n_candidates = int(n_candidates)
        self.initial_radius = float(initial_radius)
        self.radius_step = float(radius_step)
        self.max_radius = float(max_radius)
        self.vae_epochs = int(vae_epochs)
        self.vae = None

    def _fit(self, x_train, y_train):
        # The "C" in C-CHVAE: the heterogeneous VAE is *conditional* — it
        # trains on (x, true class) pairs, and the search later decodes
        # candidates under the desired class.
        self.vae = ConditionalVAE(
            self.encoder.n_encoded, np.random.default_rng(self.seed + 1),
            dropout=0.0)
        labels = np.zeros(len(x_train)) if y_train is None else \
            np.asarray(y_train, dtype=np.float64)
        train_reconstruction_vae(
            self.vae, x_train, labels, epochs=self.vae_epochs,
            lr=3e-3, beta=0.02, rng=np.random.default_rng(self.seed + 2))

    def _sample_annulus(self, center, low, high):
        """Uniform samples in the annulus ``low <= ||d|| <= high`` around center."""
        dim = center.shape[0]
        directions = self.rng.normal(size=(self.n_candidates, dim))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True) + 1e-12
        radii = self.rng.uniform(low, high, size=(self.n_candidates, 1))
        return center[None, :] + directions * radii

    def _search_one(self, z0, row_desired):
        """Grow the annulus until a decoded candidate flips the classifier."""
        low = 0.0
        high = self.initial_radius
        conditioning = np.full(self.n_candidates, row_desired, dtype=np.float64)
        while high <= self.max_radius:
            candidates = self._sample_annulus(z0, low, high)
            decoded = self.vae.decode_latent(candidates, conditioning)
            predictions = self.blackbox.predict(decoded)
            hits = np.flatnonzero(predictions == row_desired)
            if len(hits):
                displacement = np.linalg.norm(candidates[hits] - z0, axis=1)
                return decoded[hits[np.argmin(displacement)]]
            low = high
            high += self.radius_step
        # no hit within the budget: return the reconstruction itself
        return self.vae.decode_latent(z0[None, :], [row_desired])[0]

    def _generate(self, x, desired):
        # encode under the *current* predicted class, decode under the desired
        original = self.blackbox.predict(x)
        z = self.vae.sample_latent(x, original.astype(np.float64))
        out = np.empty_like(x)
        for i in range(len(x)):
            out[i] = self._search_one(z[i], desired[i])
        return out

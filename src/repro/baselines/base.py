"""Shared interface for the baseline counterfactual explainers.

Every method the paper compares against (Table IV) implements
:class:`BaseCFExplainer`: fit on the training split (if the method learns
anything), then ``generate(x, desired)`` returns encoded counterfactuals.
All baselines respect immutable attributes via projection, mirroring the
CARLA benchmark setup the paper used.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..constraints import ImmutableProjector
from ..utils.validation import check_encoded_rows

__all__ = ["BaseCFExplainer"]


class BaseCFExplainer(ABC):
    """Base class: common plumbing for baseline CF methods.

    Parameters
    ----------
    encoder:
        Fitted :class:`repro.data.TabularEncoder`.
    blackbox:
        Trained :class:`repro.models.BlackBoxClassifier` to explain.
    seed:
        Seed for the method's internal randomness.
    """

    #: Row label used in the Table IV reproduction.
    name = "baseline"

    def __init__(self, encoder, blackbox, seed=0):
        self.encoder = encoder
        self.blackbox = blackbox
        self.seed = int(seed)
        self.rng = np.random.default_rng(self.seed)
        self.projector = ImmutableProjector(encoder)
        self._fitted = False

    def _check_rows(self, x, name):
        """2-D + schema-width validation against the training encoder."""
        return check_encoded_rows(x, self.encoder, name)

    # -- lifecycle ---------------------------------------------------------
    def fit(self, x_train, y_train=None):
        """Fit method-specific machinery (default: record the data)."""
        x_train = self._check_rows(x_train, "x_train")
        self._fit(x_train, y_train)
        self._fitted = True
        return self

    def _fit(self, x_train, y_train):
        """Hook for subclasses; default no-op."""

    def generate(self, x, desired=None):
        """Generate encoded counterfactuals for rows ``x``.

        ``desired`` defaults to the flipped black-box prediction.
        Immutable columns are projected back to the input values.
        """
        if not self._fitted:
            raise RuntimeError(f"{self.name} is not fitted; call fit() first")
        x = self._check_rows(x, "x")
        if desired is None:
            desired = 1 - self.blackbox.predict(x)
        else:
            desired = np.asarray(desired, dtype=int)
            if len(desired) != len(x):
                raise ValueError(
                    f"desired ({len(desired)}) and x ({len(x)}) row counts differ")
        x_cf = self._generate(x, desired)
        return self.projector.project(x, x_cf)

    @abstractmethod
    def _generate(self, x, desired):
        """Method-specific generation; returns an encoded ndarray."""

    def __repr__(self):
        return f"{type(self).__name__}(name={self.name!r})"

"""Shared interface for the baseline counterfactual explainers.

Every method the paper compares against (Table IV) implements
:class:`BaseCFExplainer`: fit on the training split (if the method learns
anything), then ``generate(x, desired)`` returns encoded counterfactuals.
All baselines respect immutable attributes via projection, mirroring the
CARLA benchmark setup the paper used.

``BaseCFExplainer`` is a :class:`repro.engine.CFStrategy`: the method
itself only *proposes* raw candidates (:meth:`propose`); immutable
projection, validity filtering and metric scoring live once in the
engine runner.  :meth:`generate` remains as a thin adapter for direct
use — one proposal plus one batched projection.
"""

from __future__ import annotations

from abc import abstractmethod

import numpy as np

from ..constraints import ImmutableProjector
from ..engine.strategy import CandidateBatch, CFStrategy
from ..utils.validation import check_encoded_rows

__all__ = ["BaseCFExplainer"]


class BaseCFExplainer(CFStrategy):
    """Base class: common plumbing for baseline CF methods.

    Parameters
    ----------
    encoder:
        Fitted :class:`repro.data.TabularEncoder`.
    blackbox:
        Trained :class:`repro.models.BlackBoxClassifier` to explain.
    seed:
        Seed for the method's internal randomness.
    """

    #: Row label used in the Table IV reproduction.
    name = "baseline"

    def __init__(self, encoder, blackbox, seed=0):
        self.encoder = encoder
        self.blackbox = blackbox
        self.seed = int(seed)
        self.rng = np.random.default_rng(self.seed)
        self.projector = ImmutableProjector(encoder)
        self._fitted = False

    def _check_rows(self, x, name):
        """2-D + schema-width validation against the training encoder."""
        return check_encoded_rows(x, self.encoder, name)

    def describe(self):
        """Identity dict including the method's scalar hyperparameters.

        Two same-class strategies with different knobs (e.g. DiCE with
        ``max_attempts`` 10 vs 200) must fingerprint differently, or the
        serving cache would serve one's results as the other's.
        """
        info = super().describe()
        info["params"] = {
            key: value
            for key, value in sorted(vars(self).items())
            if not key.startswith("_") and isinstance(value, (bool, int, float, str))
        }
        config = getattr(self, "config", None)
        if config is not None:
            from dataclasses import asdict

            info["config"] = {
                key: (float(value) if isinstance(value, float) else value)
                for key, value in asdict(config).items()
            }
        return info

    # -- lifecycle ---------------------------------------------------------
    def fit(self, x_train, y_train=None):
        """Fit method-specific machinery (default: record the data)."""
        x_train = self._check_rows(x_train, "x_train")
        self._fit(x_train, y_train)
        self._fitted = True
        return self

    def _fit(self, x_train, y_train):
        """Hook for subclasses; default no-op."""

    def propose(self, x, desired=None):
        """Propose raw (pre-projection) counterfactuals for rows ``x``.

        ``desired`` defaults to the flipped black-box prediction.  The
        returned :class:`CandidateBatch` holds one candidate per row;
        projection and validity checks are the engine runner's job.
        """
        if not self._fitted:
            raise RuntimeError(f"{self.name} is not fitted; call fit() first")
        x = self._check_rows(x, "x")
        if desired is None:
            desired = 1 - self.blackbox.predict(x)
        else:
            desired = np.asarray(desired, dtype=int)
            if len(desired) != len(x):
                raise ValueError(
                    f"desired ({len(desired)}) and x ({len(x)}) row counts differ")
        x_cf = np.asarray(self._generate(x, desired), dtype=np.float64)
        return CandidateBatch(x=x, desired=desired,
                              candidates=x_cf[:, None, :])

    def generate(self, x, desired=None):
        """Generate encoded counterfactuals for rows ``x``.

        Thin adapter over the engine decomposition: one :meth:`propose`
        call followed by one batched immutable projection — the
        projection runs once for the whole candidate batch, not per
        candidate row.
        """
        batch = self.propose(x, desired)
        return self.projector.project(batch.x, batch.candidates)[:, 0, :]

    @abstractmethod
    def _generate(self, x, desired):
        """Method-specific generation; returns an encoded ndarray."""

    def __repr__(self):
        return f"{type(self).__name__}(name={self.name!r})"

"""CEM (pertinent negatives) — Dhurandhar et al. (2018).

"Explanations based on the Missing": the pertinent-negative mode finds a
*minimal, sparse* perturbation ``delta`` such that ``x + delta`` is
classified as the desired class, by minimising

``hinge(f(x + delta), desired) + beta * ||delta||_1 + ||delta||_2^2``

with proximal gradient descent (ISTA): a gradient step on the smooth
part followed by soft-thresholding for the L1 term.  The elastic-net
regulariser is why CEM wins the sparsity column of Table IV while paying
in validity and feasibility — it has no data-manifold or causal terms.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor, hinge_loss
from .base import BaseCFExplainer

__all__ = ["CEMExplainer"]


class CEMExplainer(BaseCFExplainer):
    """Pertinent-negative search with ISTA and elastic-net regularisation.

    Parameters
    ----------
    beta:
        L1 weight (soft-threshold level is ``beta * lr``).
    l2_weight:
        L2 ("ridge") weight on the perturbation.
    kappa:
        Confidence margin in the hinge term.
    steps, lr:
        ISTA iterations and step size.
    """

    name = "cem"

    def __init__(self, encoder, blackbox, seed=0, beta=0.5, l2_weight=0.5,
                 kappa=0.3, steps=200, lr=0.05):
        super().__init__(encoder, blackbox, seed=seed)
        self.beta = float(beta)
        self.l2_weight = float(l2_weight)
        self.kappa = float(kappa)
        self.steps = int(steps)
        self.lr = float(lr)

    def _fit(self, x_train, y_train):
        """CEM needs no training — it only queries the classifier."""

    def _generate(self, x, desired):
        for parameter in self.blackbox.parameters():
            parameter.requires_grad = False
        delta = np.zeros_like(x)
        mutable = ~self.projector.mask
        best = x.copy()
        best_found = np.zeros(len(x), dtype=bool)

        for _ in range(self.steps):
            delta_tensor = Tensor(delta, requires_grad=True)
            candidate = Tensor(x) + delta_tensor
            # sum-reduce so each row's gradient magnitude is independent of
            # the batch size (hinge_loss/mean would shrink it below the
            # soft-threshold level for large batches)
            hinge = hinge_loss(self.blackbox.forward(candidate), desired,
                               margin=self.kappa) * len(x)
            ridge = (delta_tensor ** 2).sum(axis=1).sum() * self.l2_weight
            (hinge + ridge).backward()
            gradient = delta_tensor.grad

            # gradient step on the smooth part, then soft-threshold (ISTA)
            stepped = delta - self.lr * gradient
            threshold = self.beta * self.lr
            delta = np.sign(stepped) * np.maximum(np.abs(stepped) - threshold, 0.0)
            delta[:, ~mutable] = 0.0
            # keep candidates inside the valid encoded range
            delta = np.clip(x + delta, 0.0, 1.0) - x

            predictions = self.blackbox.predict(x + delta)
            hits = predictions == desired
            improved = hits & (
                ~best_found
                | (np.abs(delta).sum(axis=1) < np.abs(best - x).sum(axis=1)))
            best[improved] = (x + delta)[improved]
            best_found |= hits

        # rows never flipped return their last iterate (still sparse)
        best[~best_found] = (x + delta)[~best_found]
        return best

"""Baseline counterfactual methods the paper compares against (Table IV).

Each is re-implemented from its original paper on the shared
:class:`BaseCFExplainer` interface: Mahajan et al. (causal CF-VAE, no
sparsity), REVISE (latent gradient search), C-CHVAE (latent growing
spheres), CEM (pertinent negatives), DiCE-random (random sampling) and
FACE (density-weighted graph retrieval).
"""

from .base import BaseCFExplainer
from .cchvae import CCHVAEExplainer
from .cem import CEMExplainer
from .dice_random import DiceRandomExplainer
from .face import FACEExplainer
from .mahajan import MahajanExplainer
from .revise import ReviseExplainer

__all__ = [
    "BaseCFExplainer",
    "MahajanExplainer", "ReviseExplainer", "CCHVAEExplainer",
    "CEMExplainer", "DiceRandomExplainer", "FACEExplainer",
]

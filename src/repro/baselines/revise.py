"""REVISE — Joshi et al. (2019).

"Towards Realistic Individual Recourse": gradient descent in the latent
space of a data-fidelity VAE.  The latent code is initialised at the
encoding of the input and optimised to minimise

``hinge(f(decode(z)), desired) + lambda * ||decode(z) - x||_1``

so the counterfactual stays on the learned data manifold.  We batch the
optimisation — all instances' latents update simultaneously (they are
independent in the loss).
"""

from __future__ import annotations

import numpy as np

from ..models import ConditionalVAE, train_reconstruction_vae
from ..nn import Adam, Tensor, hinge_loss, no_grad
from .base import BaseCFExplainer

__all__ = ["ReviseExplainer"]


class ReviseExplainer(BaseCFExplainer):
    """Latent-space gradient search in a reconstruction VAE.

    Parameters
    ----------
    distance_weight:
        Weight ``lambda`` of the L1 proximity term.
    steps:
        Gradient steps in latent space.
    lr:
        Adam learning rate for the latent codes.
    vae_epochs:
        Epochs for the underlying reconstruction VAE fit.
    """

    name = "revise"

    def __init__(self, encoder, blackbox, seed=0, distance_weight=0.5,
                 steps=300, lr=0.1, vae_epochs=50):
        super().__init__(encoder, blackbox, seed=seed)
        self.distance_weight = float(distance_weight)
        self.steps = int(steps)
        self.lr = float(lr)
        self.vae_epochs = int(vae_epochs)
        self.vae = None

    def _fit(self, x_train, y_train):
        # CARLA's REVISE searches a plain (unconditional) VAE, so the
        # class input is pinned to zero during both fitting and search.
        self.vae = ConditionalVAE(
            self.encoder.n_encoded, np.random.default_rng(self.seed + 1),
            dropout=0.0)
        train_reconstruction_vae(
            self.vae, x_train, np.zeros(len(x_train)), epochs=self.vae_epochs,
            lr=3e-3, beta=0.02, rng=np.random.default_rng(self.seed + 2))

    def _generate(self, x, desired):
        for parameter in self.vae.parameters():
            parameter.requires_grad = False
        for parameter in self.blackbox.parameters():
            parameter.requires_grad = False
        self.vae.eval()
        zeros = np.zeros(len(x))

        with no_grad():
            mu, _ = self.vae.encode(Tensor(x), zeros)
        z = Tensor(mu.data.copy(), requires_grad=True)
        optimizer = Adam([z], lr=self.lr)
        x_tensor = Tensor(x)

        for _ in range(self.steps):
            optimizer.zero_grad()
            decoded = self.vae.decode(z, zeros)
            validity = hinge_loss(self.blackbox.forward(decoded), desired,
                                  margin=0.5)
            distance = (decoded - x_tensor).abs().mean()
            (validity + distance * self.distance_weight).backward()
            optimizer.step()

        with no_grad():
            return self.vae.decode(Tensor(z.data), zeros).data

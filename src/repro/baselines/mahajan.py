"""Mahajan et al. (2019): causal-constraint CF-VAE *without* sparsity.

"Preserving Causal Constraints in Counterfactual Explanations for
Machine Learning Classifiers" is the closest prior work and the paper's
main head-to-head.  Architecturally it is the same conditional VAE
trained with validity + proximity + causal feasibility — the difference
the paper highlights is the absence of the sparsity term, which is
exactly how we implement it: the shared :class:`CFVAEGenerator` with the
sparsity weights zeroed.
"""

from __future__ import annotations

import numpy as np
from dataclasses import replace

from ..constraints import build_constraints
from ..core.config import CFTrainingConfig
from ..core.generator import CFVAEGenerator
from ..models import ConditionalVAE
from .base import BaseCFExplainer

__all__ = ["MahajanExplainer"]


class MahajanExplainer(BaseCFExplainer):
    """Causal CF-VAE baseline (no sparsity term).

    Parameters
    ----------
    constraint_kind:
        ``"unary"`` or ``"binary"`` — Mahajan et al. is trained per
        constraint model, like our method (Table IV reports both rows).
    config:
        Optional base config; its sparsity weights are forced to zero.
    min_epochs:
        Training-epoch floor (default 50, the setting the L2 objective
        needs to converge at paper scale).  Benchmarks lower it to keep
        smoke sweeps fast.
    """

    def __init__(self, encoder, blackbox, constraint_kind="unary",
                 config=None, seed=0, min_epochs=50):
        super().__init__(encoder, blackbox, seed=seed)
        self.name = f"mahajan_{constraint_kind}"
        self.constraint_kind = constraint_kind
        base = config or CFTrainingConfig()
        # Faithful differences from our method (see DESIGN.md): no sparsity
        # term; ELBO-style squared reconstruction proximity; a milder causal
        # term (Mahajan et al. regularise with a learned causal-proximity
        # score rather than our hard hinge penalties); and a larger margin /
        # validity weight, which keeps the method at its published ~100%
        # validity despite the quadratic pull.
        # Table III lists *our* model's epochs; the Mahajan baseline is
        # trained separately and its L2 objective converges more slowly,
        # so it gets at least 50 epochs.
        self.config = replace(base, sparsity_l1_weight=0.0, sparsity_l0_weight=0.0,
                              proximity_metric="l2", validity_weight=3.0,
                              hinge_margin=1.5, feasibility_weight=2.0,
                              epochs=max(base.epochs, int(min_epochs)))
        self.constraints = build_constraints(encoder, constraint_kind)
        self.generator = None

    def _fit(self, x_train, y_train):
        vae = ConditionalVAE(
            self.encoder.n_encoded, np.random.default_rng(self.seed + 3))
        self.generator = CFVAEGenerator(
            vae, self.blackbox, self.constraints, self.projector,
            self.config, rng=np.random.default_rng(self.seed + 4))
        self.generator.fit(x_train)

    def _generate(self, x, desired):
        return self.generator.generate(x, desired)

"""Reproduction of "A Framework for Feasible Counterfactual Exploration
incorporating Causality, Sparsity and Density" (ICDE 2024).

The package is organised bottom-up:

* :mod:`repro.nn` -- numpy autograd substrate (replaces the DL framework).
* :mod:`repro.data` -- dataset schemas, synthetic SCM generators and the
  invertible tabular encoder (replaces the UCI downloads).
* :mod:`repro.models` -- the black-box classifier and the Table II VAE.
* :mod:`repro.constraints` -- unary/binary causal constraints, immutables.
* :mod:`repro.core` -- the paper's contribution: the feasibility-aware
  CF-VAE with the four-part loss, behind ``FeasibleCFExplainer``.
* :mod:`repro.baselines` -- Mahajan et al., REVISE, C-CHVAE, CEM,
  DiCE-random and FACE, re-implemented from their papers.
* :mod:`repro.engine` -- the batch-first explainer engine: compiled
  feasibility kernel, the ``CFStrategy`` API every method implements,
  the shared runner and the scenario registry (see
  ``docs/architecture.md``).
* :mod:`repro.density` -- the unified density layer: one batch-first
  ``DensityModel`` (k-NN / KDE / CF-VAE latent) behind Figure 3
  selection, FACE's graph, the engine's density column and warm-started
  density-aware serving (see ``docs/density.md``).
* :mod:`repro.metrics` -- the five evaluation metrics of Section IV-D.
* :mod:`repro.manifold` -- from-scratch t-SNE plus density diagnostics
  for the Figure 6 manifolds.
* :mod:`repro.experiments` -- harness that regenerates every table and
  figure of the evaluation section.
* :mod:`repro.serve` -- artifact store + warm-start strategy-agnostic
  serving.
"""

__version__ = "1.0.0"

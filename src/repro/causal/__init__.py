"""Unified batch-first causal subsystem (the paper's first pillar).

One ``CausalModel`` layer turns SCM knowledge into a service the whole
stack shares: the engine runner repairs every strategy's candidate
sweeps into causal consistency, Table IV gains a ``causal_plausibility``
column, the artifact store persists fingerprinted causal state, the
serving layer answers causally-repaired warm-start batches and the
scenario registry grows ``+scm`` / ``+mined`` variants.  See
``docs/causal.md``.
"""

from .base import (
    CAUSAL_NAMES,
    CAUSAL_TOLERANCE,
    CausalModel,
    build_causal,
    causal_from_state,
    fit_causal,
)
from .differentiable import MinedLossSurrogate, ScmLossSurrogate, causal_loss_surrogate
from .equations import StructuralEquation, scm_equations
from .models import MinedCausalModel, ScmCausalModel

__all__ = [
    "CAUSAL_NAMES",
    "CAUSAL_TOLERANCE",
    "CausalModel",
    "MinedCausalModel",
    "MinedLossSurrogate",
    "ScmCausalModel",
    "ScmLossSurrogate",
    "StructuralEquation",
    "build_causal",
    "causal_from_state",
    "causal_loss_surrogate",
    "fit_causal",
    "scm_equations",
]

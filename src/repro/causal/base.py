"""The ``CausalModel`` contract every implementation and consumer shares.

Causality is the first pillar of the paper's triplet, and — like density
before PR 4 — its knowledge used to be scattered: the hand-built SCMs
live inside the dataset generators, and ``ConstraintMiner`` discovers
causal relations nothing downstream could *act* on.  ``CausalModel`` is
the one batch-first interface that turns that knowledge into a service
(following Mahajan et al. 2019, "Preserving Causal Constraints in
Counterfactual Explanations"):

* ``fit(x, y=None)`` — bind the model to a training population (the
  mined model discovers its relations here; the SCM model validates the
  schema),
* ``abduct(x)`` — recover each row's exogenous residuals under the
  structural equations (step 1 of abduction-action-prediction),
* ``intervene(x, interventions)`` — apply ``do()``-style actions and
  push them through the equations with the abducted noise, returning a
  full encoded matrix,
* ``repair_batch(x, candidates)`` — the engine-facing hot path: make a
  whole ``(n, m, d)`` candidate sweep causally consistent in ONE
  vectorized pass, with :meth:`CausalModel._repair_loop` kept as the
  bit-identical per-row parity reference,
* ``score(x, x_cf)`` — per-row causal *inconsistency cost* (L1 distance
  to the repaired candidate; ``0`` means already consistent), the basis
  of the Table IV ``causal_plausibility`` column,
* ``get_state`` / ``from_state`` / ``fingerprint()`` — the persistence
  contract matching :class:`repro.density.DensityModel`, so the artifact
  store can reject stale causal state exactly like stale weights.

``build_causal`` is the single factory the engine runner, the scenario
registry, the CLI and the serving layer call.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..utils.validation import check_encoded_rows, check_encoded_sweep

__all__ = [
    "CAUSAL_NAMES",
    "CAUSAL_TOLERANCE",
    "CausalModel",
    "build_causal",
    "causal_from_state",
    "fit_causal",
]

#: Model names the factory accepts.
CAUSAL_NAMES = ("scm", "mined")

#: Encoded-L1 repair distance below which a candidate counts as causally
#: consistent (the ``causal_plausibility`` threshold).  Strictly above
#: float round-trip noise, strictly below any real repair step.
CAUSAL_TOLERANCE = 1e-6


class CausalModel(ABC):
    """Batch-first causal service over a fitted encoder's schema.

    Repair never *lowers* causal consistency: a candidate that already
    satisfies the model's equations passes through bit-identical, so
    strategies that respect causality pay nothing.  Implementations are
    elementwise-vectorized, which is what makes the batched
    :meth:`repair_batch` bit-identical to the per-row loop.
    """

    #: Registry name of the model (``scm`` / ``mined``).
    kind = "causal"

    #: State keys excluded from :meth:`fingerprint` (performance-only).
    fingerprint_excludes = ()

    #: The fitted encoder implementations bind at construction.
    encoder = None

    @abstractmethod
    def fit(self, x, y=None):
        """Bind the model to an encoded training matrix; returns ``self``."""

    @abstractmethod
    def abduct(self, x):
        """Exogenous residuals per structural relation of encoded rows ``x``.

        Returns a dict mapping a stable relation label to an ``(n,)``
        residual array (empty for models without additive equations).
        """

    @abstractmethod
    def intervene(self, x, interventions, noise=None):
        """Push ``do()``-style actions through the model for rows ``x``.

        ``interventions`` maps feature names to new raw values (scalar
        or ``(n,)``; categorical features accept labels or ranks).
        Intervened features are severed from their own equations; every
        downstream equation re-evaluates with the abducted ``noise``
        (recomputed from ``x`` when ``None``).  Returns a full encoded
        ``(n, d)`` matrix.
        """

    @abstractmethod
    def _repair_flat(self, x, candidates):
        """Repair a flat ``(N, d)`` candidate matrix against inputs ``x``.

        The shared elementwise core both :meth:`repair_batch` and
        :meth:`_repair_loop` call — keeping every operation elementwise
        per row is what guarantees their bit-parity.
        """

    # -- batch repair --------------------------------------------------------
    def repair_batch(self, x, candidates, validate=True):
        """Causally repair a full ``(n, m, d)`` candidate sweep in one pass.

        The engine's hot path: the sweep is flattened once and repaired
        as a single matrix, so causal consistency for ``n * m``
        candidates costs one vectorized pass instead of ``n``.  Output is
        bit-identical to :meth:`_repair_loop`.

        ``validate=False`` skips the schema/finiteness checks (including
        the full sweep ``isfinite`` scan) for callers repairing
        *internally generated* candidates they already validated — the
        engine runner's per-batch path.  Public callers should keep the
        default.
        """
        x, candidates = self._check_batch(x, candidates, validate)
        n, m, d = candidates.shape
        flat = self._repair_flat(np.repeat(x, m, axis=0), candidates.reshape(n * m, d))
        return flat.reshape(n, m, d)

    def _repair_loop(self, x, candidates, validate=True):
        """Per-row reference for :meth:`repair_batch` (parity + benchmarks).

        The shape of pre-causal-layer per-request code: one repair pass
        per input row's candidate set.  Only parity tests and the
        perfbench should call it.
        """
        x, candidates = self._check_batch(x, candidates, validate)
        m = candidates.shape[1]
        rows = [
            self._repair_flat(np.repeat(x[i : i + 1], m, axis=0), candidates[i])
            for i in range(len(x))
        ]
        return np.stack(rows)

    def repair(self, x, x_cf):
        """Repair one counterfactual per row: ``(n, d)`` in, ``(n, d)`` out."""
        x_cf = np.asarray(x_cf, dtype=np.float64)
        return self.repair_batch(x, x_cf[:, None, :])[:, 0, :]

    def score(self, x, x_cf):
        """Per-row causal inconsistency cost of counterfactuals ``x_cf``.

        The encoded L1 distance between each candidate and its repaired
        version — ``0`` exactly when the candidate already satisfies the
        model (repair leaves consistent candidates bit-identical).
        """
        x_cf = np.asarray(x_cf, dtype=np.float64)
        return np.abs(self.repair(x, x_cf) - x_cf).sum(axis=1)

    def _check_batch(self, x, candidates, validate=True):
        """Validate the (x, candidates) pair against the bound schema.

        With ``validate=False`` only the float64 coercion both repair
        paths rely on is applied (trusted internal callers).
        """
        if not validate:
            x = np.asarray(x, dtype=np.float64)
            return x, np.asarray(candidates, dtype=np.float64)
        x = check_encoded_rows(x, self.encoder, "x")
        candidates = check_encoded_sweep(candidates, self.encoder, len(x), "candidates")
        return x, candidates

    # -- persistence ---------------------------------------------------------
    @abstractmethod
    def get_state(self):
        """Flat state dict: ``kind`` plus ndarray / JSON-scalar values."""

    @classmethod
    @abstractmethod
    def from_state(cls, state, encoder):
        """Rebuild a fitted model from :meth:`get_state` output.

        ``encoder`` re-attaches the fitted encoder the model reads its
        feature layout and continuous ranges from (the store persists
        causal state, never a second copy of the encoder).
        """

    def _fingerprint_state(self):
        """State dict the fingerprint hashes; defaults to :meth:`get_state`.

        Implementations whose ``get_state`` enforces a *persistability*
        guard (the SCM model refuses custom equation lists) override
        this with an unguarded payload, so a model that cannot be saved
        can still be fingerprinted — and therefore hosted by the engine
        and the serving cache keys.
        """
        return self.get_state()

    def fingerprint(self):
        """Deterministic hash of the fitted state, for caches and the store.

        Delegates to the shared :func:`repro.serve.persist.fingerprint_state`
        contract (arrays hashed by content, scalars canonically
        JSON-encoded) — the exact contract of
        ``DensityModel.fingerprint``, so the store and service treat
        causal staleness identically to density staleness.
        """
        from ..serve.persist import fingerprint_state

        return fingerprint_state(self._fingerprint_state(), self.fingerprint_excludes)


def build_causal(name, encoder, **kwargs):
    """Construct an unfitted causal model by registry name.

    Parameters
    ----------
    name:
        One of :data:`CAUSAL_NAMES`.
    encoder:
        Fitted :class:`repro.data.TabularEncoder` the model binds to.
    kwargs:
        Forwarded to the model constructor (e.g. ``max_relations`` or
        ``min_correlation`` for the mined model).
    """
    from .models import MinedCausalModel, ScmCausalModel

    if name == "scm":
        return ScmCausalModel(encoder, **kwargs)
    if name == "mined":
        return MinedCausalModel(encoder, **kwargs)
    raise KeyError(f"unknown causal model {name!r}; options: {CAUSAL_NAMES}")


def fit_causal(name, encoder, x_train, y_train=None):
    """Build the named model and fit it on the training matrix.

    The shared recipe every causal consumer uses — scenarios, the serve
    demo and the benchmarks all bind the model to the full training
    population (the mined model needs the marginals; the SCM model only
    validates the schema).
    """
    return build_causal(name, encoder).fit(x_train, y_train)


def causal_from_state(state, encoder):
    """Rebuild a fitted model from a persisted state dict.

    The inverse of :meth:`CausalModel.get_state`, dispatched on the
    ``kind`` entry; ``encoder`` re-attaches the fitted encoder.
    """
    from .models import MinedCausalModel, ScmCausalModel

    kind = state.get("kind")
    if kind == "scm":
        return ScmCausalModel.from_state(state, encoder)
    if kind == "mined":
        return MinedCausalModel.from_state(state, encoder)
    raise KeyError(f"unknown causal state kind {kind!r}; options: {CAUSAL_NAMES}")

"""Differentiable causal-plausibility penalties for the six-part loss.

:class:`repro.causal.models.ScmCausalModel` repairs candidates after the
fact; this module turns the same structural knowledge into a training
signal.  :func:`causal_loss_surrogate` wraps a *fitted* causal model and
exposes ``penalty(x, x_cf) -> Tensor`` — a scalar the CF-VAE objective
can backpropagate:

* :class:`ScmLossSurrogate` replays Mahajan et al.'s
  abduction-action-prediction as autograd ops: the exogenous residuals
  are abducted from the factual rows (constants), and each additive
  equation contributes the squared gap between the candidate's effect
  and the re-predicted ``predict(causes_cf) + residual``, masked to rows
  that actually moved a cause (matching the repair semantics).  Floor
  and monotone equations contribute squared hinge penalties below their
  bounds.  Equation ``predict`` skeletons are probed once for
  Tensor-safety: affine skeletons run on the graph (gradients reach the
  cause columns), table-lookup/clip skeletons fall back to evaluating on
  detached data (gradients reach the effect column only).
* :class:`MinedLossSurrogate` applies the squared hinge of each mined
  monotone relation: when the candidate moves a cause up, the effect is
  penalised below ``effect_x + slope * delta``.

All terms are computed in encoded units, so the penalty scale is
comparable across equations and datasets.  Squared hinges keep the terms
C^1, which the finite-difference gradient checks rely on.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor, as_tensor
from .models import MinedCausalModel, ScmCausalModel

__all__ = ["ScmLossSurrogate", "MinedLossSurrogate", "causal_loss_surrogate"]


def _soft_rank(x_cf, block, weights):
    """Differentiable categorical rank: soft one-hot dotted with ranks."""
    return (x_cf[:, block] * weights).sum(axis=1)


def _read_cf(codec, encoder, x_cf, name):
    """Differentiable raw-unit read of one feature from the candidate Tensor.

    The graph twin of ``_FeatureCodec.read`` with one relaxation: the
    categorical argmax becomes the soft rank (the same relaxation the
    mined model's ``_cause_values`` uses), so gradients can flow into
    one-hot blocks.
    """
    kind = codec.kinds[name]
    if kind == "categorical":
        return _soft_rank(x_cf, codec.columns[name], encoder.category_rank_weights(name))
    if kind == "continuous":
        low, high = codec.ranges[name]
        return x_cf[:, codec.columns[name]] * (high - low) + low
    return x_cf[:, codec.columns[name]]


class ScmLossSurrogate:
    """Differentiable SCM residual penalty over a fitted :class:`ScmCausalModel`."""

    kind = "scm"

    def __init__(self, model):
        if not isinstance(model, ScmCausalModel):
            raise TypeError(f"expected ScmCausalModel, got {type(model).__name__}")
        self.model = model
        self._codec = model._codec
        self._graph_safe = {
            eq.label: self._probe(eq)
            for eq in model.equations
            if eq.mode == "additive"
        }

    # -- Tensor-safety probe -------------------------------------------
    def _probe(self, eq):
        """True when ``eq.predict`` runs on Tensors and matches its ndarray
        result — affine skeletons qualify, clip/lookup/comparison ones
        do not and use the detached fallback."""
        probe = {}
        for cause in eq.causes:
            kind = self._codec.kinds[cause]
            if kind == "continuous":
                low, high = self._codec.ranges[cause]
                probe[cause] = np.linspace(low, high, 3)
            elif kind == "categorical":
                n_cat = len(self._codec.categories[cause])
                probe[cause] = np.arange(3, dtype=np.float64) % n_cat
            else:
                probe[cause] = np.array([0.0, 1.0, 1.0])
        expected = np.asarray(eq.predict(probe), dtype=np.float64)
        try:
            got = eq.predict({c: Tensor(v) for c, v in probe.items()})
        except Exception:
            return False
        return (isinstance(got, Tensor) and got.shape == expected.shape
                and np.allclose(got.data, expected))

    # -- differentiable term -------------------------------------------
    def penalty(self, x, x_cf):
        """Mean squared causal-inconsistency of the candidate batch (Tensor)."""
        x = np.asarray(x, dtype=np.float64)
        x_cf = as_tensor(x_cf)
        codec = self._codec
        model = self.model
        v_x = codec.read(x, model._features)
        v_cf_data = codec.read(x_cf.data, model._features)
        residuals = model._residuals(v_x)
        terms = []
        for eq in model.equations:
            effect = eq.effect
            column = codec.columns[effect]
            low, high = codec.clip_range(effect)
            effect_cf = x_cf[:, column]  # encoded units
            if eq.mode == "monotone":
                # effect must not fall below its factual value
                floor_enc = codec.encode_value(effect, v_x[effect])
                gap = (floor_enc - effect_cf).clip_min(0.0)
            elif eq.mode == "floor":
                # support bound from the candidate's causes; lookups are
                # table-based, so the bound is a detached constant
                floor_raw = eq.predict({c: v_cf_data[c] for c in eq.causes})
                floor_enc = codec.encode_value(effect, np.clip(floor_raw, low, high))
                gap = (floor_enc - effect_cf).clip_min(0.0)
            else:
                moved = model._causes_moved(eq, v_x, v_cf_data)
                if self._graph_safe[eq.label]:
                    causes = {c: _read_cf(codec, model.encoder, x_cf, c)
                              for c in eq.causes}
                    target_raw = eq.predict(causes) + residuals[eq.label]
                else:
                    predicted = eq.predict({c: v_cf_data[c] for c in eq.causes})
                    target_raw = as_tensor(predicted + residuals[eq.label])
                if codec.kinds[effect] == "continuous":
                    target_enc = (target_raw - low) * (1.0 / (high - low))
                else:
                    target_enc = target_raw
                gap = (effect_cf - target_enc) * moved.astype(np.float64)
            terms.append((gap ** 2).mean())
        if not terms:
            return Tensor(0.0)
        total = terms[0]
        for term in terms[1:]:
            total = total + term
        return total * (1.0 / len(terms))

    def fingerprint(self):
        """Fingerprint of the wrapped causal model's state."""
        return self.model.fingerprint()


class MinedLossSurrogate:
    """Squared-hinge penalties over a fitted :class:`MinedCausalModel`."""

    kind = "mined"

    def __init__(self, model):
        if not isinstance(model, MinedCausalModel):
            raise TypeError(f"expected MinedCausalModel, got {type(model).__name__}")
        model._require_fitted()
        self.model = model
        self._codec = model._codec

    def penalty(self, x, x_cf):
        """Mean squared monotone-implication violation (Tensor)."""
        x = np.asarray(x, dtype=np.float64)
        x_cf = as_tensor(x_cf)
        model = self.model
        codec = self._codec
        terms = []
        for cause, effect, slope in model.relations:
            cause_x = model._cause_values(x, cause)
            if codec.kinds[cause] == "categorical":
                cause_cf = _soft_rank(x_cf, codec.columns[cause],
                                      model.encoder.category_rank_weights(cause))
            else:
                cause_cf = x_cf[:, codec.columns[cause]]
            column = codec.columns[effect]
            effect_x = x[:, column]
            effect_cf = x_cf[:, column]
            delta = cause_cf - cause_x
            # the repair's dead zone: a cause moved *down* frees the
            # effect entirely (constant mask, from detached values)
            active = (delta.data > -model.tolerance).astype(np.float64)
            floor = effect_x + delta.clip_min(0.0) * slope + model.strict_margin
            # cap at the encoded ceiling like the repair does
            capped = -((-floor).clip_min(-1.0))
            gap = (capped - effect_cf).clip_min(0.0) * active
            terms.append((gap ** 2).mean())
        if not terms:
            return Tensor(0.0)
        total = terms[0]
        for term in terms[1:]:
            total = total + term
        return total * (1.0 / len(terms))

    def fingerprint(self):
        """Fingerprint of the wrapped causal model's state."""
        return self.model.fingerprint()


def causal_loss_surrogate(model):
    """Wrap a fitted causal model in its differentiable loss surrogate."""
    if isinstance(model, ScmCausalModel):
        return ScmLossSurrogate(model)
    if isinstance(model, MinedCausalModel):
        return MinedLossSurrogate(model)
    raise TypeError(
        f"no loss surrogate for {type(model).__name__}; "
        f"expected ScmCausalModel or MinedCausalModel")

"""The two batch-first causal models.

* :class:`ScmCausalModel` — the dataset's explicit structural equations
  (:mod:`repro.causal.equations`), run as one vectorized
  abduction-action-prediction pass: residuals are abducted from the
  input rows, and every endogenous feature whose cause a candidate moved
  is re-predicted with those residuals; support floors (minimum
  attainment age, monotone time) are enforced on top.
* :class:`MinedCausalModel` — built from
  :class:`repro.constraints.ConstraintMiner` relations (or an explicit
  relation list): when a candidate moves a cause *up*, the effect is
  monotone-repaired up to the implied floor
  ``effect + slope * delta_cause``; an unchanged cause pins the effect
  at non-decreasing.  Repaired candidates satisfy the corresponding
  :class:`~repro.constraints.binary.OrdinalImplicationConstraint` by
  construction (up to the encoded feature ceiling).

Both models are elementwise-vectorized so the batched ``repair_batch``
is bit-identical to the per-row ``_repair_loop`` parity reference.
"""

from __future__ import annotations

import numpy as np

from ..data.schema import FeatureType
from ..utils.validation import check_encoded_rows
from .base import CausalModel
from .equations import scm_equations

__all__ = ["MinedCausalModel", "ScmCausalModel"]


class _FeatureCodec:
    """Read/write per-feature scalar values on encoded matrices.

    Values are *raw units*: de-normalised floats for continuous
    features, 0/1 for binary, hard (argmax) integer ranks for
    categorical blocks — the value space the structural equations are
    written in.  Every operation is elementwise per row, which keeps
    batched and per-row consumers bit-identical.
    """

    def __init__(self, encoder):
        self.encoder = encoder
        self.kinds = {}
        self.columns = {}
        self.ranges = {}
        self.categories = {}
        ranges = encoder.ranges
        for spec in encoder.schema.features:
            block = encoder.feature_slices[spec.name]
            if spec.ftype is FeatureType.CATEGORICAL:
                self.kinds[spec.name] = "categorical"
                self.columns[spec.name] = block
                self.categories[spec.name] = spec.categories
            elif spec.ftype is FeatureType.CONTINUOUS:
                self.kinds[spec.name] = "continuous"
                self.columns[spec.name] = block.start
                self.ranges[spec.name] = ranges[spec.name]
            else:
                self.kinds[spec.name] = "binary"
                self.columns[spec.name] = block.start

    def read(self, x, names):
        """Raw value array per requested feature name."""
        values = {}
        for name in names:
            kind = self.kinds[name]
            if kind == "categorical":
                values[name] = np.argmax(x[:, self.columns[name]], axis=1).astype(np.float64)
            elif kind == "continuous":
                low, high = self.ranges[name]
                values[name] = x[:, self.columns[name]] * (high - low) + low
            else:
                values[name] = x[:, self.columns[name]]
        return values

    def encode_value(self, name, raw):
        """Raw values of a continuous/binary feature back to encoded units."""
        if self.kinds[name] == "continuous":
            low, high = self.ranges[name]
            return (raw - low) / (high - low)
        return raw

    def clip_range(self, name):
        """(low, high) raw clip bounds for a repaired feature."""
        if self.kinds[name] == "continuous":
            return self.ranges[name]
        return (0.0, 1.0)

    def moved_tolerance(self, name):
        """Raw-unit threshold above which a feature counts as "moved".

        1e-6 encoded units for continuous/binary features; categorical
        ranks are integers, so any difference counts.
        """
        if self.kinds[name] == "continuous":
            low, high = self.ranges[name]
            return 1e-6 * (high - low)
        return 1e-6

    def coerce(self, name, value, n_rows):
        """An intervention value as an ``(n_rows,)`` raw-value array."""
        if self.kinds[name] == "categorical":
            labels = self.categories[name]
            values = np.asarray(value, dtype=object).reshape(-1)
            if len(values) == 1:
                values = np.repeat(values, n_rows)
            converted = [labels.index(v) if isinstance(v, str) else int(v) for v in values]
            ranks = np.array(converted, dtype=np.float64)
        else:
            ranks = np.broadcast_to(np.asarray(value, dtype=np.float64), (n_rows,)).copy()
        if len(ranks) != n_rows:
            raise ValueError(
                f"intervention on {name!r} has {len(ranks)} values for {n_rows} rows"
            )
        return ranks

    def write(self, out, name, raw):
        """Write raw values of one feature back into encoded matrix ``out``."""
        kind = self.kinds[name]
        if kind == "categorical":
            block = self.columns[name]
            ranks = np.asarray(raw).astype(int)
            out[:, block] = 0.0
            out[np.arange(len(out)), block.start + ranks] = 1.0
        else:
            out[:, self.columns[name]] = self.encode_value(name, raw)


class ScmCausalModel(CausalModel):
    """Abduction-action-prediction over a dataset's explicit SCM.

    Parameters
    ----------
    encoder:
        Fitted :class:`repro.data.TabularEncoder`; its schema name picks
        the equation list (overridable via ``equations``).
    equations:
        Optional explicit tuple of
        :class:`repro.causal.equations.StructuralEquation`.
    """

    kind = "scm"

    def __init__(self, encoder, equations=None):
        self.encoder = encoder
        # provenance, not label comparison: a custom list could reuse the
        # default labels with different coefficients, which no state dict
        # can distinguish — only registry-built models may persist
        self._from_registry = equations is None
        if equations is None:
            equations = scm_equations(encoder.schema.name)
        self.equations = tuple(equations)
        self._codec = _FeatureCodec(encoder)
        self._features = self._referenced_features()
        self._effects = tuple(dict.fromkeys(eq.effect for eq in self.equations))
        immutable = set(encoder.schema.immutable_names)
        for eq in self.equations:
            kind = self._codec.kinds.get(eq.effect)
            if kind is None:
                raise KeyError(f"equation effect {eq.effect!r} is not in the schema")
            if kind == "categorical":
                raise ValueError(
                    f"equation effect {eq.effect!r} is categorical; repair "
                    f"writes continuous/binary effects only"
                )
            if eq.effect in immutable:
                raise ValueError(
                    f"equation effect {eq.effect!r} is immutable; an SCM "
                    f"must never repair a protected attribute"
                )
            for cause in eq.causes:
                if cause not in self._codec.kinds:
                    raise KeyError(f"equation cause {cause!r} is not in the schema")

    def _referenced_features(self):
        names = []
        for eq in self.equations:
            names.extend(eq.causes)
            names.append(eq.effect)
        return tuple(dict.fromkeys(names))

    # -- protocol ------------------------------------------------------------
    def fit(self, x, y=None):
        """Validate ``x`` against the schema; the equations are static."""
        check_encoded_rows(x, self.encoder, "x")
        return self

    def _residuals(self, values):
        """Per-equation exogenous residual (raw units) of observed values."""
        residuals = {}
        for eq in self.equations:
            if eq.mode == "monotone":
                residuals[eq.label] = np.zeros_like(values[eq.effect])
            else:
                predicted = eq.predict({c: values[c] for c in eq.causes})
                residuals[eq.label] = values[eq.effect] - predicted
        return residuals

    def abduct(self, x):
        """Exogenous residual per equation: observed minus predicted effect.

        Additive equations return the noise term the generator sampled;
        floor equations return the individual's slack above the support
        bound; monotone equations carry no noise (zeros).
        """
        x = check_encoded_rows(x, self.encoder, "x")
        return self._residuals(self._codec.read(x, self._features))

    def _causes_moved(self, eq, v_x, v_cf):
        moved = np.zeros(len(v_cf[eq.effect]), dtype=bool)
        for cause in eq.causes:
            tolerance = self._codec.moved_tolerance(cause)
            moved |= np.abs(v_cf[cause] - v_x[cause]) > tolerance
        return moved

    def _repair_flat(self, x, candidates):
        out = candidates.copy()
        v_x = self._codec.read(x, self._features)
        v_cf = self._codec.read(out, self._features)
        original = {name: v_cf[name] for name in self._effects}
        residuals = self._residuals(v_x)
        for eq in self.equations:
            effect = eq.effect
            if eq.mode == "monotone":
                new = np.maximum(v_cf[effect], v_x[effect])
            elif eq.mode == "floor":
                floor = eq.predict({c: v_cf[c] for c in eq.causes})
                new = np.maximum(v_cf[effect], floor)
            else:
                predicted = eq.predict({c: v_cf[c] for c in eq.causes})
                moved = self._causes_moved(eq, v_x, v_cf)
                new = np.where(moved, predicted + residuals[eq.label], v_cf[effect])
            # clip only entries the equation actually changed, so
            # untouched candidates keep their exact bits (and score 0)
            low, high = self._codec.clip_range(effect)
            v_cf[effect] = np.where(new != v_cf[effect], np.clip(new, low, high), v_cf[effect])
        for effect in self._effects:
            changed = v_cf[effect] != original[effect]
            if changed.any():
                column = self._codec.columns[effect]
                encoded = self._codec.encode_value(effect, v_cf[effect])
                out[:, column] = np.where(changed, encoded, out[:, column])
        return out

    def intervene(self, x, interventions, noise=None):
        """Apply ``do()`` actions and push them through the equations.

        Intervened features are severed from their own equations
        (Pearl's do-operator); downstream equations re-evaluate with the
        abducted residuals, floors and monotone bounds included, in
        topological order.  Features no equation touches are copied from
        ``x`` unchanged.
        """
        x = check_encoded_rows(x, self.encoder, "x")
        n = len(x)
        all_names = tuple(self._codec.kinds)
        observed = self._codec.read(x, all_names)
        actions = {}
        for name, value in dict(interventions).items():
            if name not in self._codec.kinds:
                raise KeyError(f"intervention target {name!r} is not in the schema")
            actions[name] = self._codec.coerce(name, value, n)

        values = dict(observed)
        values.update(actions)
        residuals = self.abduct(x) if noise is None else dict(noise)
        for eq in self.equations:
            effect = eq.effect
            if effect in actions:
                continue
            if eq.mode == "monotone":
                new = np.maximum(values[effect], observed[effect])
            elif eq.mode == "floor":
                floor = eq.predict({c: values[c] for c in eq.causes})
                new = np.maximum(values[effect], floor)
            else:
                moved = self._causes_moved(eq, observed, values)
                predicted = eq.predict({c: values[c] for c in eq.causes})
                new = np.where(moved, predicted + residuals[eq.label], values[effect])
            low, high = self._codec.clip_range(effect)
            clipped = np.clip(new, low, high)
            values[effect] = np.where(new != values[effect], clipped, values[effect])

        out = x.copy()
        for name in all_names:
            if np.any(values[name] != observed[name]):
                self._codec.write(out, name, values[name])
        return out

    # -- persistence ---------------------------------------------------------
    def _fingerprint_state(self):
        """Unguarded state payload: custom-equation models fingerprint fine
        even though they refuse to persist.  The labels and the
        registry-provenance flag keep custom lists distinct from the
        defaults; two *different* custom lists sharing every label are
        indistinguishable here — give bespoke equations bespoke effects
        or causes."""
        names = sorted(self._codec.ranges)
        return {
            "kind": self.kind,
            "schema": self.encoder.schema.name,
            "equations": [eq.label for eq in self.equations],
            "registry_equations": self._from_registry,
            "range_features": names,
            "range_low": np.array([self._codec.ranges[n][0] for n in names]),
            "range_high": np.array([self._codec.ranges[n][1] for n in names]),
        }

    def get_state(self):
        # only the dataset's own equation list has a rebuild recipe
        # (from_state reconstructs it from the schema name); a custom
        # equations= list — even one reusing the default labels — would
        # silently load as the defaults, so refuse to persist it: the
        # same contract as the artifact store's refusal of custom
        # constraint sets.
        if not self._from_registry:
            labels = [eq.label for eq in self.equations]
            raise ValueError(
                f"cannot persist a custom equation list {labels}: from_state "
                f"rebuilds the {self.encoder.schema.name!r} registry defaults; "
                f"persist only dataset-default SCM models"
            )
        return self._fingerprint_state()

    @classmethod
    def from_state(cls, state, encoder):
        if state.get("schema") != encoder.schema.name:
            raise ValueError(
                f"causal state is for schema {state.get('schema')!r}, "
                f"not {encoder.schema.name!r}"
            )
        return cls(encoder)


class MinedCausalModel(CausalModel):
    """Monotone repair over mined "cause up implies effect up" relations.

    Parameters
    ----------
    encoder:
        Fitted :class:`repro.data.TabularEncoder`.
    relations:
        Optional explicit relations — ``(cause, effect, slope)`` triples
        (slope in encoded effect units per cause unit) or
        :class:`~repro.constraints.discovery.DiscoveredRelation` objects.
        When omitted, :meth:`fit` mines them from the training matrix.
    max_relations, min_correlation, min_floor_monotonicity:
        Mining knobs forwarded to :class:`ConstraintMiner`.
    strict_margin:
        Extra encoded-units increase applied when the cause moved up, so
        the repaired effect satisfies the strict-inequality clause of
        ``OrdinalImplicationConstraint`` (kept above its ``tolerance``).
    tolerance:
        Cause-change dead zone, matching the constraint's.
    """

    kind = "mined"

    def __init__(
        self,
        encoder,
        relations=None,
        max_relations=8,
        min_correlation=0.15,
        min_floor_monotonicity=0.7,
        strict_margin=2e-6,
        tolerance=1e-6,
    ):
        self.encoder = encoder
        self.max_relations = int(max_relations)
        self.min_correlation = float(min_correlation)
        self.min_floor_monotonicity = float(min_floor_monotonicity)
        self.strict_margin = float(strict_margin)
        self.tolerance = float(tolerance)
        self._codec = _FeatureCodec(encoder)
        self.relations = None
        if relations is not None:
            self.relations = tuple(self._normalize(r) for r in relations)

    def _normalize(self, relation):
        if hasattr(relation, "cause"):
            slope = max(float(relation.suggested_slope), 1e-3)
            triple = (relation.cause, relation.effect, slope)
        else:
            cause, effect, slope = relation
            triple = (str(cause), str(effect), float(slope))
        cause, effect, _ = triple
        if cause not in self._codec.kinds:
            raise KeyError(f"relation cause {cause!r} is not in the schema")
        if self._codec.kinds.get(effect) != "continuous":
            raise ValueError(f"relation effect {effect!r} must be a continuous feature")
        if effect in self.encoder.schema.immutable_names:
            raise ValueError(
                f"relation effect {effect!r} is immutable; refusing to "
                f"repair a protected attribute"
            )
        return triple

    def _require_fitted(self):
        if self.relations is None:
            raise RuntimeError(
                f"{type(self).__name__} is not fitted; call fit() first "
                f"or construct with relations="
            )

    # -- protocol ------------------------------------------------------------
    def fit(self, x, y=None):
        """Mine relations from the (decoded) training matrix.

        No-op when relations were supplied at construction.  Mining runs
        :class:`ConstraintMiner` on the inverse-transformed frame —
        exactly the discovery path of ``repro.cli discover`` — and keeps
        the ``max_relations`` strongest.  An empty mining result is
        legal and yields the identity repair.
        """
        x = check_encoded_rows(x, self.encoder, "x")
        if self.relations is not None:
            return self
        from ..constraints import ConstraintMiner

        frame = self.encoder.inverse_transform(x)
        miner = ConstraintMiner(
            self.encoder,
            min_correlation=self.min_correlation,
            min_floor_monotonicity=self.min_floor_monotonicity,
        )
        mined = miner.mine(frame)
        # correlational mining can return both directions of one pair
        # (zgpa <-> zfygpa); keep only the stronger direction so the
        # repair pass never chases its own tail
        kept, seen = [], set()
        for relation in mined:
            if (relation.effect, relation.cause) in seen:
                continue
            seen.add((relation.cause, relation.effect))
            kept.append(relation)
        self.relations = tuple(self._normalize(r) for r in kept[: self.max_relations])
        return self

    def _cause_values(self, x, cause):
        """Encoded-unit cause value: soft ordinal rank or raw column.

        Matches ``OrdinalImplicationConstraint`` exactly — soft one-hot
        blocks dot the rank weights (computed as an elementwise
        multiply-and-sum so batched and per-row paths agree bitwise).
        """
        if self._codec.kinds[cause] == "categorical":
            block = self._codec.columns[cause]
            weights = self.encoder.category_rank_weights(cause)
            return (x[:, block] * weights).sum(axis=1)
        return x[:, self._codec.columns[cause]]

    def abduct(self, x):
        """Per-relation effect slack of encoded rows (observational units).

        The mined model carries no generative noise; its "residual" per
        relation is the observed effect value itself, which is what the
        monotone repair anchors its floors to.
        """
        x = check_encoded_rows(x, self.encoder, "x")
        self._require_fitted()
        return {
            f"{cause}=>{effect}": x[:, self._codec.columns[effect]].copy()
            for cause, effect, _ in self.relations
        }

    def _repair_flat(self, x, candidates):
        self._require_fitted()
        out = candidates.copy()
        for cause, effect, slope in self.relations:
            cause_x = self._cause_values(x, cause)
            cause_cf = self._cause_values(out, cause)
            column = self._codec.columns[effect]
            effect_x = x[:, column]
            delta = cause_cf - cause_x
            cause_up = delta > self.tolerance
            cause_same = np.abs(delta) <= self.tolerance
            lifted = effect_x + slope * np.maximum(delta, 0.0) + self.strict_margin
            floor = np.where(cause_up, lifted, np.where(cause_same, effect_x, -np.inf))
            # the lift never leaves the encoded [0, 1] box every other
            # candidate source maintains: at the feature ceiling the
            # repair is best-effort (the implication cannot be satisfied
            # within the domain there)
            out[:, column] = np.maximum(out[:, column], np.minimum(floor, 1.0))
        return out

    def intervene(self, x, interventions, noise=None):
        """Apply actions, then monotone-repair every mined implication.

        The mined model has no generative equations to re-predict from;
        an intervention sets the acted-on features and the repair lifts
        each relation's effect to its implied floor — the counterfactual
        one obtains by *doing* the action and conceding the causally
        implied side effects, and nothing else.
        """
        x = check_encoded_rows(x, self.encoder, "x")
        self._require_fitted()
        n = len(x)
        acted = x.copy()
        for name, value in dict(interventions).items():
            if name not in self._codec.kinds:
                raise KeyError(f"intervention target {name!r} is not in the schema")
            self._codec.write(acted, name, self._codec.coerce(name, value, n))
        return self._repair_flat(x, acted)

    # -- persistence ---------------------------------------------------------
    def get_state(self):
        self._require_fitted()
        return {
            "kind": self.kind,
            "schema": self.encoder.schema.name,
            "causes": [cause for cause, _, _ in self.relations],
            "effects": [effect for _, effect, _ in self.relations],
            "slopes": np.array([slope for _, _, slope in self.relations]),
            "strict_margin": self.strict_margin,
            "tolerance": self.tolerance,
        }

    @classmethod
    def from_state(cls, state, encoder):
        if state.get("schema") != encoder.schema.name:
            raise ValueError(
                f"causal state is for schema {state.get('schema')!r}, "
                f"not {encoder.schema.name!r}"
            )
        slopes = np.asarray(state["slopes"], dtype=np.float64)
        relations = list(zip(state["causes"], state["effects"], slopes))
        return cls(
            encoder,
            relations=relations,
            strict_margin=state["strict_margin"],
            tolerance=state["tolerance"],
        )

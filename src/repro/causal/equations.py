"""Per-dataset structural equations, lifted out of the data generators.

Each registry dataset's synthetic generator samples from a hand-built
SCM (see :mod:`repro.data`).  This module states those same mechanisms
as *deterministic* equation lists the causal layer can act on — the
coefficients are imported from the data modules themselves
(``HOURS_EQUATION``, ``WAGE_EQUATION``, ...), so the repair math and the
sampling math share one source of truth.

An equation comes in one of three modes:

* ``additive`` — ``effect = predict(causes) + u`` with exogenous noise
  ``u`` abducted per individual (Mahajan et al.'s
  abduction-action-prediction); the effect is recomputed when a cause
  moved.
* ``floor`` — a hard support bound: ``effect >= predict(causes)``
  (e.g. age can never be below the minimum attainment age of the
  counterfactual's education level).
* ``monotone`` — ``effect >= its pre-intervention value`` (time only
  moves forward: age, and the paper's non-decreasing LSAT).

Equation lists are **topologically ordered**: an equation may reference
effects repaired by earlier list entries (KDD's ``wage`` reads the
already-repaired ``age``), and floors are stated after the additive
equations that feed them.

Values are expressed in *raw attribute units* (years of age, LSAT
points, ranks for ordinal categoricals), which keeps the equations
legible against the generator code; the models in
:mod:`repro.causal.models` handle the encoded <-> raw conversion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.adult import EDUCATION_LEVELS, EDUCATION_MIN_AGE, HOURS_EQUATION
from ..data.kdd_census import (
    KDD_EDUCATION_LEVELS,
    KDD_EDUCATION_MIN_AGE,
    WAGE_EQUATION,
    WEEKS_EQUATION,
)
from ..data.law_school import (
    LSAT_EQUATION,
    TIER_EQUATION,
    ZFYGPA_EQUATION,
    ZGPA_EQUATION,
)

__all__ = ["EQUATION_MODES", "StructuralEquation", "scm_equations"]

EQUATION_MODES = ("additive", "floor", "monotone")


@dataclass(frozen=True)
class StructuralEquation:
    """One structural equation of a dataset's SCM.

    Attributes
    ----------
    effect:
        Name of the endogenous feature the equation determines.  Must be
        a mutable continuous feature (repair writes it back).
    causes:
        Parent feature names, in the order ``predict`` expects them.
        Empty for ``monotone`` equations.
    predict:
        Vectorized deterministic skeleton: maps a dict of per-cause raw
        value arrays to the predicted effect values (raw units).
        ``None`` for ``monotone`` equations.
    mode:
        One of :data:`EQUATION_MODES` (see the module docstring).
    """

    effect: str
    causes: tuple = ()
    predict: object = None
    mode: str = "additive"
    #: Human-readable provenance shown in docs and ``describe()``.
    note: str = field(default="", compare=False)

    def __post_init__(self):
        if self.mode not in EQUATION_MODES:
            raise ValueError(f"mode must be one of {EQUATION_MODES}, got {self.mode!r}")
        if self.mode == "monotone":
            if self.causes or self.predict is not None:
                raise ValueError("monotone equations take no causes/predict")
        elif self.predict is None:
            raise ValueError(f"{self.mode} equation for {self.effect!r} needs predict")

    @property
    def label(self):
        """Stable identifier: ``effect<-cause,cause`` (``effect<-self``)."""
        parents = ",".join(self.causes) if self.causes else "self"
        return f"{self.effect}<-{parents}"

    def describe(self):
        """One-line human-readable summary."""
        return f"{self.label} [{self.mode}]" + (f": {self.note}" if self.note else "")


def _min_age_lookup(levels, min_age_map):
    """Vectorized education-rank -> minimum-age table lookup."""
    table = np.array([float(min_age_map[level]) for level in levels])

    def predict(values):
        ranks = np.asarray(values["education"]).astype(int)
        return table[np.clip(ranks, 0, len(table) - 1)]

    return predict


def _adult_equations():
    def hours(values):
        rank_shift = values["occupation"] - HOURS_EQUATION["anchor_rank"]
        base = HOURS_EQUATION["base"] + HOURS_EQUATION["gender_shift"] * values["gender"]
        return base + HOURS_EQUATION["per_occupation_rank"] * rank_shift

    return (
        StructuralEquation(
            "age",
            ("education",),
            _min_age_lookup(EDUCATION_LEVELS, EDUCATION_MIN_AGE),
            mode="floor",
            note="each education level has a minimum attainment age",
        ),
        StructuralEquation("age", mode="monotone", note="time only moves forward"),
        StructuralEquation(
            "hours_per_week",
            ("occupation", "gender"),
            hours,
            note="hours track occupation rank (noise abducted)",
        ),
    )


def _kdd_equations():
    def wage(values):
        education_term = WAGE_EQUATION["per_education_rank"] * values["education"]
        age_term = WAGE_EQUATION["per_year_of_age"] * values["age"]
        return WAGE_EQUATION["base"] + education_term + age_term

    def weeks(values):
        years_working = values["age"] - WEEKS_EQUATION["working_age_start"]
        working_age = np.clip(years_working / WEEKS_EQUATION["working_age_span"], 0.0, 1.0)
        utilization = WEEKS_EQUATION["base_utilization"] + 0.5 * WEEKS_EQUATION["utilization_span"]
        graduated = values["education"] >= WEEKS_EQUATION["min_bonus_rank"]
        bonus = WEEKS_EQUATION["hs_grad_bonus"] * graduated
        return WEEKS_EQUATION["weeks_full_year"] * working_age * utilization + bonus

    return (
        StructuralEquation(
            "age",
            ("education",),
            _min_age_lookup(KDD_EDUCATION_LEVELS, KDD_EDUCATION_MIN_AGE),
            mode="floor",
            note="each education level has a minimum attainment age",
        ),
        StructuralEquation("age", mode="monotone", note="time only moves forward"),
        StructuralEquation(
            "wage_per_hour",
            ("education", "age"),
            wage,
            note="wage tracks education rank and age (noise abducted)",
        ),
        StructuralEquation(
            "weeks_worked",
            ("education", "age"),
            weeks,
            note="weeks track working age at mean utilization",
        ),
    )


def _law_equations():
    # Inverting the generator's tier equation (tier tracks the admission
    # z-score, which weights the standardized LSAT by ``per_aptitude``):
    # one tier step corresponds to per_aptitude / per_admission_z LSAT
    # points, so a more selective school implies a higher LSAT floor.
    lsat_per_tier = LSAT_EQUATION["per_aptitude"] / TIER_EQUATION["per_admission_z"]

    def lsat(values):
        return LSAT_EQUATION["base"] + lsat_per_tier * (values["tier"] - TIER_EQUATION["anchor"])

    def zfygpa(values):
        return ZFYGPA_EQUATION["per_tier"] * (values["tier"] - ZFYGPA_EQUATION["tier_anchor"])

    def zgpa(values):
        return ZGPA_EQUATION["per_zfygpa"] * values["zfygpa"]

    return (
        StructuralEquation(
            "lsat",
            ("tier",),
            lsat,
            note="tier up implies LSAT up (inverse of the admission eq.)",
        ),
        StructuralEquation("lsat", mode="monotone", note="an achieved score is not unlearned"),
        StructuralEquation(
            "zfygpa",
            ("tier",),
            zfygpa,
            note="grade curves tighten with selectivity (noise abducted)",
        ),
        StructuralEquation(
            "zgpa",
            ("zfygpa",),
            zgpa,
            note="final GPA tracks first-year GPA (noise abducted)",
        ),
    )


_EQUATIONS = {
    "adult": _adult_equations,
    "kdd_census": _kdd_equations,
    "law_school": _law_equations,
}


def scm_equations(dataset_name):
    """The topologically-ordered equation list for a registry dataset."""
    if dataset_name not in _EQUATIONS:
        raise KeyError(
            f"no structural equations for dataset {dataset_name!r}; "
            f"options: {sorted(_EQUATIONS)}"
        )
    return _EQUATIONS[dataset_name]()

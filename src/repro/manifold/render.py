"""ASCII rendering of 2-D manifolds — the terminal version of Figure 6.

The published figure colours feasible counterfactuals yellow and
infeasible ones violet; here feasible points print as ``+`` and
infeasible as ``.``, with ``#`` marking cells containing both.
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_scatter"]

_GLYPHS = {"empty": " ", "first": ".", "second": "+", "both": "#"}


def render_scatter(embedding, labels, width=72, height=24, title=None):
    """Render a labelled 2-D point cloud as ASCII art.

    Parameters
    ----------
    embedding:
        (n, 2) coordinates.
    labels:
        Binary labels; 0 renders as ``.`` (infeasible), 1 as ``+``
        (feasible), mixed cells as ``#``.
    width, height:
        Character-grid resolution.
    title:
        Optional heading line.
    """
    embedding = np.asarray(embedding, dtype=np.float64)
    labels = np.asarray(labels).astype(int)
    if embedding.ndim != 2 or embedding.shape[1] != 2:
        raise ValueError(f"embedding must be (n, 2), got {embedding.shape}")
    if len(embedding) != len(labels):
        raise ValueError("embedding and labels must align")

    x = embedding[:, 0]
    y = embedding[:, 1]
    x_span = x.max() - x.min() or 1.0
    y_span = y.max() - y.min() or 1.0
    columns = np.clip(((x - x.min()) / x_span * (width - 1)).astype(int), 0, width - 1)
    rows = np.clip(((y - y.min()) / y_span * (height - 1)).astype(int), 0, height - 1)

    has_zero = np.zeros((height, width), dtype=bool)
    has_one = np.zeros((height, width), dtype=bool)
    for row, column, label in zip(rows, columns, labels):
        if label == 0:
            has_zero[row, column] = True
        else:
            has_one[row, column] = True

    lines = []
    if title:
        lines.append(title)
    lines.append("legend: '.' infeasible   '+' feasible   '#' mixed")
    border = "+" + "-" * width + "+"
    lines.append(border)
    for row in range(height - 1, -1, -1):  # y grows upward
        cells = []
        for column in range(width):
            if has_zero[row, column] and has_one[row, column]:
                cells.append(_GLYPHS["both"])
            elif has_one[row, column]:
                cells.append(_GLYPHS["second"])
            elif has_zero[row, column]:
                cells.append(_GLYPHS["first"])
            else:
                cells.append(_GLYPHS["empty"])
        lines.append("|" + "".join(cells) + "|")
    lines.append(border)
    return "\n".join(lines)

"""Manifold tooling for Figure 6: exact t-SNE, density diagnostics, rendering."""

from .density import centroid_separation, density_grid, knn_label_agreement
from .render import render_scatter
from .tsne import TSNE, pca_project

__all__ = [
    "TSNE", "pca_project",
    "knn_label_agreement", "centroid_separation", "density_grid",
    "render_scatter",
]

"""Exact t-SNE, implemented from scratch (Figure 6 substrate).

The paper projects VAE latent vectors to 2-D with t-SNE (van der Maaten
& Hinton's refinement of the SNE of Hinton & Roweis, the paper's [21]).
This is the standard exact O(n²) algorithm:

1. per-point Gaussian bandwidths found by binary search so each row of
   the affinity matrix has the requested perplexity,
2. symmetrised input affinities ``P``,
3. Student-t low-dimensional affinities ``Q``,
4. gradient descent on KL(P || Q) with momentum, gains and early
   exaggeration, initialised from PCA.

Sample sizes for the manifold figures are a few thousand points, where
the exact method is fast enough and has no approximation error.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TSNE", "pca_project"]

_EPS = 1e-12


def pca_project(x, n_components=2):
    """Project ``x`` onto its top principal components (t-SNE init)."""
    x = np.asarray(x, dtype=np.float64)
    centered = x - x.mean(axis=0)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return centered @ vt[:n_components].T


def _pairwise_sq_distances(x):
    """Squared Euclidean distance matrix."""
    norms = (x ** 2).sum(axis=1)
    d2 = norms[:, None] + norms[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(d2, 0.0)
    return np.maximum(d2, 0.0)


def _row_affinities(distances_row, beta):
    """Conditional Gaussian affinities for one point at precision ``beta``."""
    p = np.exp(-distances_row * beta)
    total = p.sum()
    if total <= 0:
        return np.full_like(p, 1.0 / len(p)), 0.0
    p = p / total
    entropy = -np.sum(p * np.log2(p + _EPS))
    return p, entropy


def _binary_search_perplexity(distances, perplexity, tol=1e-5, max_iter=50):
    """Per-point precision (beta) matching ``log2(perplexity)`` entropy.

    Batched: every still-unconverged row steps through the same binary
    search simultaneously — one ``exp``/normalise/entropy evaluation per
    iteration over the active rows instead of one Python loop iteration
    per point.  Because each row's arithmetic is independent and the
    per-row reductions keep their length and order, the result is
    bit-identical to :func:`_binary_search_perplexity_loop` (the original
    scalar loop, kept as the parity reference).
    """
    n = len(distances)
    target = np.log2(perplexity)
    # off-diagonal distances, row-major: row i keeps its n-1 neighbours in
    # exactly np.delete(distances[i], i) order
    off_diag = distances[~np.eye(n, dtype=bool)].reshape(n, n - 1)

    beta = np.ones(n)
    beta_min = np.full(n, -np.inf)
    beta_max = np.full(n, np.inf)
    affinity_rows = np.empty((n, n - 1))
    active = np.arange(n)
    for _ in range(max_iter):
        rows = off_diag[active]
        scaled = np.exp(-rows * beta[active][:, None])
        totals = scaled.sum(axis=1)
        positive = totals > 0
        p = np.where(
            positive[:, None],
            scaled / np.where(positive, totals, 1.0)[:, None],
            1.0 / (n - 1),
        )
        entropy = np.where(
            positive, -(p * np.log2(p + _EPS)).sum(axis=1), 0.0)
        affinity_rows[active] = p

        diff = entropy - target
        undecided = np.abs(diff) >= tol
        if not undecided.any():
            break
        active = active[undecided]
        diff = diff[undecided]

        hot = diff > 0  # entropy too high -> sharpen
        hot_rows, cold_rows = active[hot], active[~hot]
        beta_min[hot_rows] = beta[hot_rows]
        beta[hot_rows] = np.where(
            beta_max[hot_rows] == np.inf,
            beta[hot_rows] * 2.0,
            (beta[hot_rows] + beta_max[hot_rows]) / 2.0,
        )
        beta_max[cold_rows] = beta[cold_rows]
        beta[cold_rows] = np.where(
            beta_min[cold_rows] == -np.inf,
            beta[cold_rows] / 2.0,
            (beta[cold_rows] + beta_min[cold_rows]) / 2.0,
        )

    affinities = np.zeros((n, n))
    affinities[~np.eye(n, dtype=bool)] = affinity_rows.ravel()
    return affinities


def _binary_search_perplexity_loop(distances, perplexity, tol=1e-5, max_iter=50):
    """Scalar per-point reference for :func:`_binary_search_perplexity`.

    The original implementation, kept as the ground truth the batched
    search must reproduce exactly.  Only the parity tests should call it.
    """
    n = len(distances)
    target = np.log2(perplexity)
    affinities = np.zeros((n, n))
    for i in range(n):
        row = np.delete(distances[i], i)
        beta, beta_min, beta_max = 1.0, -np.inf, np.inf
        p = None
        for _ in range(max_iter):
            p, entropy = _row_affinities(row, beta)
            diff = entropy - target
            if abs(diff) < tol:
                break
            if diff > 0:  # entropy too high -> sharpen
                beta_min = beta
                beta = beta * 2.0 if beta_max == np.inf else (beta + beta_max) / 2.0
            else:
                beta_max = beta
                beta = beta / 2.0 if beta_min == -np.inf else (beta + beta_min) / 2.0
        affinities[i, np.arange(n) != i] = p
    return affinities


class TSNE:
    """Exact t-SNE to ``n_components`` dimensions.

    Parameters
    ----------
    n_components:
        Output dimensionality (the paper uses 2).
    perplexity:
        Effective neighbourhood size; clipped to ``(n - 1) / 3``.
    learning_rate:
        Gradient step scale.
    n_iter:
        Total gradient iterations (early exaggeration occupies the first
        quarter, capped at 100).
    seed:
        Seed for the tiny Gaussian jitter added to the PCA init.
    """

    def __init__(self, n_components=2, perplexity=30.0, learning_rate=200.0,
                 n_iter=500, seed=0):
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        if perplexity <= 1:
            raise ValueError("perplexity must exceed 1")
        if n_iter < 10:
            raise ValueError("n_iter must be >= 10")
        self.n_components = int(n_components)
        self.perplexity = float(perplexity)
        self.learning_rate = float(learning_rate)
        self.n_iter = int(n_iter)
        self.seed = int(seed)
        self.kl_history = []

    def fit_transform(self, x):
        """Embed rows of ``x``; returns an (n, n_components) array."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        n = len(x)
        if n < 5:
            raise ValueError("need at least 5 points for t-SNE")

        perplexity = min(self.perplexity, (n - 1) / 3.0)
        distances = _pairwise_sq_distances(x)
        conditional = _binary_search_perplexity(distances, perplexity)
        p = (conditional + conditional.T) / (2.0 * n)
        p = np.maximum(p, _EPS)

        rng = np.random.default_rng(self.seed)
        y = pca_project(x, self.n_components)
        scale = np.abs(y).max()
        if scale > 0:
            y = y / scale * 1e-2
        y = y + rng.normal(0.0, 1e-4, size=y.shape)

        velocity = np.zeros_like(y)
        gains = np.ones_like(y)
        exaggeration_iters = min(100, self.n_iter // 4)
        self.kl_history = []

        for iteration in range(self.n_iter):
            exaggeration = 4.0 if iteration < exaggeration_iters else 1.0
            momentum = 0.5 if iteration < exaggeration_iters else 0.8

            d2 = _pairwise_sq_distances(y)
            student = 1.0 / (1.0 + d2)
            np.fill_diagonal(student, 0.0)
            q = student / max(student.sum(), _EPS)
            q = np.maximum(q, _EPS)

            coefficient = (exaggeration * p - q) * student
            gradient = 4.0 * ((np.diag(coefficient.sum(axis=1)) - coefficient) @ y)

            same_sign = np.sign(gradient) == np.sign(velocity)
            gains = np.where(same_sign, gains * 0.8, gains + 0.2)
            gains = np.maximum(gains, 0.01)
            velocity = momentum * velocity - self.learning_rate * gains * gradient
            y = y + velocity
            y = y - y.mean(axis=0)

            if iteration % 50 == 0 or iteration == self.n_iter - 1:
                kl = float(np.sum(p * np.log(p / q)))
                self.kl_history.append(kl)
        return y

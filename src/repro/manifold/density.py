"""Quantifying the Figure 6 claim: feasible and infeasible regions separate.

The paper reads separability off the t-SNE scatter plots by eye; these
diagnostics make it measurable:

* :func:`knn_label_agreement` — fraction of points whose k nearest
  neighbours (in the embedding) share their label.  High agreement means
  the two classes occupy distinct regions.
* :func:`centroid_separation` — distance between class centroids scaled
  by the mean within-class spread (a silhouette-flavoured ratio).
* :func:`density_grid` — 2-D histogram per label, the numeric analogue of
  the colour density in the published figure.
"""

from __future__ import annotations

import numpy as np

from ..density import KnnDensity

__all__ = ["knn_label_agreement", "centroid_separation", "density_grid"]


def knn_label_agreement(embedding, labels, k=10):
    """Mean fraction of each point's k neighbours sharing its label.

    0.5 means fully mixed classes (for balanced labels); 1.0 means
    perfectly separated clusters.  ``k`` is clipped to ``n - 1``
    neighbours, so any oversized k degrades to all-other-points.
    """
    embedding = np.asarray(embedding, dtype=np.float64)
    labels = np.asarray(labels)
    if len(embedding) != len(labels):
        raise ValueError("embedding and labels must align")
    n = len(embedding)
    k = min(k, n - 1)
    if k < 1:
        raise ValueError("need at least 2 points")
    tree = KnnDensity(k_neighbors=k).fit(embedding)
    _, neighbors = tree.query(embedding, k=k + 1)
    neighbor_labels = labels[neighbors[:, 1:]]
    agreement = (neighbor_labels == labels[:, None]).mean(axis=1)
    return float(agreement.mean())


def centroid_separation(embedding, labels):
    """Between-centroid distance over mean within-class spread.

    Values well above 1 indicate visually separable regions.
    """
    embedding = np.asarray(embedding, dtype=np.float64)
    labels = np.asarray(labels)
    classes = np.unique(labels)
    if len(classes) != 2:
        raise ValueError(f"expected exactly 2 classes, got {len(classes)}")
    a = embedding[labels == classes[0]]
    b = embedding[labels == classes[1]]
    centroid_a = a.mean(axis=0)
    centroid_b = b.mean(axis=0)
    between = np.linalg.norm(centroid_a - centroid_b)
    spread_a = np.linalg.norm(a - centroid_a, axis=1).mean() if len(a) else 0.0
    spread_b = np.linalg.norm(b - centroid_b, axis=1).mean() if len(b) else 0.0
    within = (spread_a + spread_b) / 2.0
    return float(between / (within + 1e-12))


def _span_edges(values, bins):
    """Histogram bin edges over a coordinate, padded when degenerate.

    A constant coordinate would produce zero-width (non-increasing)
    edges, which ``np.histogram2d`` rejects; padding half a unit either
    side keeps the grid well-formed with every point in the middle bins.
    """
    lo, hi = float(values.min()), float(values.max())
    if hi - lo < 1e-12:
        lo, hi = lo - 0.5, hi + 0.5
    return np.linspace(lo, hi, bins + 1)


def density_grid(embedding, labels, bins=20):
    """Per-label 2-D histograms over a shared grid.

    Returns ``(grid_per_label, x_edges, y_edges)`` where ``grid_per_label``
    maps each label value to its (bins x bins) count matrix.  Degenerate
    embeddings (a constant coordinate) get padded edges instead of a
    histogram error.
    """
    embedding = np.asarray(embedding, dtype=np.float64)
    if embedding.shape[1] != 2:
        raise ValueError("density_grid expects a 2-D embedding")
    labels = np.asarray(labels)
    x_edges = _span_edges(embedding[:, 0], bins)
    y_edges = _span_edges(embedding[:, 1], bins)
    grids = {}
    for value in np.unique(labels):
        points = embedding[labels == value]
        histogram, _, _ = np.histogram2d(
            points[:, 0], points[:, 1], bins=(x_edges, y_edges))
        grids[value] = histogram
    return grids, x_edges, y_edges

"""Table II benchmark: the VAE architecture — build cost and pass latency.

Regenerates the layer table and times a forward+backward pass through
the exact Table II architecture.
"""

import numpy as np

from repro.experiments import build_table2
from repro.models import ConditionalVAE

from conftest import save_artifact


def test_vae_forward_backward(benchmark):
    vae = ConditionalVAE(29, np.random.default_rng(0))
    x = np.random.default_rng(1).random((256, 29))
    labels = np.zeros(256)

    def pass_once():
        reconstruction, mu, log_var, _ = vae(x, labels)
        loss = reconstruction.sum() + mu.sum() + log_var.sum()
        vae.zero_grad()
        loss.backward()
        return loss.item()

    result = benchmark(pass_once)
    assert np.isfinite(result)


def test_vae_construction(benchmark):
    vae = benchmark(ConditionalVAE, 29, np.random.default_rng(0))
    assert vae.latent_dim == 10


def test_table2_rendering(benchmark, artifact_dir):
    text, rows = benchmark.pedantic(
        build_table2, kwargs={"n_features": 9}, rounds=1, iterations=1)
    assert len(rows) == 10
    save_artifact("table2.txt", text)
    print("\n" + text)

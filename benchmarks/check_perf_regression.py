"""Perf-regression gate: compare BENCH_engine.json against a baseline.

CI snapshots the committed ``BENCH_engine.json`` before re-running the
benchmark, then calls this script to compare the fresh numbers against
that baseline.  The gate fails (exit code 2) when the ``rows_per_sec``
of a gated section drops by more than ``--threshold`` (default 30%),
which protects the fast-path wins already banked.  A before/after
markdown table is printed and, with ``--summary``, appended to the CI
job summary.

The baseline records *absolute* throughput, so it is only comparable on
similar hardware: regenerate the committed ``BENCH_engine.json`` on the
CI runner class (or from a main-branch bench artifact) whenever the
runner hardware changes, and keep the threshold generous — the CI job
additionally re-measures once before failing to absorb noisy-neighbor
runs.

Run locally::

    cp BENCH_engine.json /tmp/baseline.json
    PYTHONPATH=src python benchmarks/bench_perf_engine.py --scale smoke
    python benchmarks/check_perf_regression.py \
        --baseline /tmp/baseline.json --current BENCH_engine.json
"""

import argparse
import json
import pathlib
import sys

#: section -> metric key that the gate enforces.
GATED_METRICS = {
    "predict": "rows_per_sec",
    "candidates": "rows_per_sec",
    "constraint_eval": "rows_per_sec",
    "density": "rows_per_sec",
    "causal": "rows_per_sec",
    "robust": "rows_per_sec",
    "plan": "rows_per_sec",
    "serve_scale": "rows_per_sec",
    "density_at_scale": "rows_per_sec",
    "inloss": "reduction_vs_posthoc",
}

#: Reported in the table but never failing: training throughput and the
#: scenario matrix (which fits six methods end-to-end) wobble with CI
#: host load far more than the inference fast paths do.
INFORMATIONAL_METRICS = {
    "train": "rows_per_sec",
    "scenario_matrix": "min_rows_per_sec",
}

DEFAULT_THRESHOLD = 0.30


def compare(baseline, current, threshold=DEFAULT_THRESHOLD):
    """Compare two benchmark result dicts section by section.

    Returns ``(rows, failures)`` where ``rows`` is a list of
    ``(section, metric, old, new, ratio, gated, ok)`` tuples and
    ``failures`` the human-readable messages for every gated section
    whose throughput dropped below ``1 - threshold`` of the baseline.
    """
    rows = []
    failures = []
    metrics = {**{k: (v, True) for k, v in GATED_METRICS.items()},
               **{k: (v, False) for k, v in INFORMATIONAL_METRICS.items()}}
    for section, (metric, gated) in sorted(metrics.items()):
        if section not in baseline or section not in current:
            # a section new to (or removed from) this commit has no pair
            # to compare; report it rather than KeyError the gate
            rows.append((section, metric, float("nan"), float("nan"),
                         float("nan"), gated, True))
            continue
        old = float(baseline[section][metric])
        new = float(current[section][metric])
        if old <= 0:
            raise ValueError(f"baseline {section}.{metric} must be positive")
        ratio = new / old
        ok = (not gated) or ratio >= 1.0 - threshold
        rows.append((section, metric, old, new, ratio, gated, ok))
        if not ok:
            failures.append(
                f"{section}.{metric} dropped {100 * (1 - ratio):.1f}% "
                f"({old:.1f} -> {new:.1f} rows/sec; allowed drop "
                f"{100 * threshold:.0f}%)")
    return rows, failures


def render_markdown(rows, threshold):
    """Markdown before/after table for the CI job summary."""
    lines = [
        "### Perf-regression gate",
        "",
        f"Fails when a gated `rows_per_sec` drops more than "
        f"{100 * threshold:.0f}% vs the committed baseline.",
        "",
        "| section | baseline rows/s | current rows/s | ratio | gate |",
        "|---|---:|---:|---:|---|",
    ]
    for section, _metric, old, new, ratio, gated, ok in rows:
        if old != old:  # NaN: section absent on one side of the comparison
            lines.append(f"| {section} | — | — | — | no baseline |")
            continue
        if not gated:
            verdict = "info only"
        elif ok:
            verdict = "✅ pass"
        else:
            verdict = "❌ FAIL"
        lines.append(
            f"| {section} | {old:,.1f} | {new:,.1f} | {ratio:.2f}x | {verdict} |")
    return "\n".join(lines) + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=pathlib.Path, required=True,
                        help="committed BENCH_engine.json snapshot")
    parser.add_argument("--current", type=pathlib.Path, required=True,
                        help="freshly generated BENCH_engine.json")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="max allowed fractional drop (default 0.30)")
    parser.add_argument("--summary", type=pathlib.Path, default=None,
                        help="file to append the markdown table to "
                             "(e.g. $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(argv)

    if not 0.0 < args.threshold < 1.0:
        parser.error(f"--threshold must be in (0, 1), got {args.threshold}")

    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    rows, failures = compare(baseline, current, threshold=args.threshold)

    markdown = render_markdown(rows, args.threshold)
    print(markdown)
    if args.summary is not None:
        with open(args.summary, "a") as handle:
            handle.write(markdown)

    if failures:
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        return 2
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark: exact vs ANN density queries over growing reference sizes.

Runs :func:`repro.experiments.density_scale.run_density_at_scale` and
merges the result into ``BENCH_engine.json`` as the ``density_at_scale``
section, which ``check_perf_regression.py`` gates on ``rows_per_sec``
(the ANN query rate at the 10k CI-comparable size).  The recall floor
(``MIN_ANN_RECALL``) is asserted before any timing and the
``MIN_ANN_SPEEDUP`` floor at 100k+ reference rows — a run that merges a
section has, by construction, passed the contract.

The reference population is the downloadable UCI Adult Census entry
(cached under ``$REPRO_DATA_CACHE``, checksum-verified); offline runs
fall back to a synthetically upsampled population of the same schema,
recorded in the section's ``source`` field.

Run directly::

    PYTHONPATH=src python benchmarks/bench_density_at_scale.py \
        --sizes 1000 10000 100000

or through pytest (CI's budgeted 1k/10k smoke)::

    PYTHONPATH=src python -m pytest benchmarks/bench_density_at_scale.py -q
"""

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_engine.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.density_scale import (  # noqa: E402
    DEFAULT_SIZES,
    run_density_at_scale,
)

#: CI smoke sizes: exact and ANN both finish in seconds, the recall
#: contract is still exercised on real (or fallback) Adult rows, and the
#: gated 10k rate is produced.  The 100k/1M speedup sizes are the local
#: full run's job.
SMOKE_SIZES = (1_000, 10_000)


def merge_into_bench(section, output=DEFAULT_OUTPUT):
    """Attach the density_at_scale section to BENCH_engine.json."""
    if output.exists():
        results = json.loads(output.read_text())
    else:
        results = {"benchmark": "engine_fast_path"}
    results["density_at_scale"] = section
    output.write_text(json.dumps(results, indent=2) + "\n")
    return output


def test_density_at_scale(artifact_dir):
    """Pytest entry: recall + rate contract at smoke sizes, JSON merged."""
    section = run_density_at_scale(sizes=SMOKE_SIZES, seed=0)
    assert section["rows_per_sec"] > 0
    assert all(row["recall_at_k"] >= section["recall_floor"]
               for row in section["sizes"])
    merge_into_bench(section)
    artifact = artifact_dir / "bench_density_at_scale.json"
    artifact.write_text(json.dumps(section, indent=2) + "\n")
    print(json.dumps(section, indent=2))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
                        help="reference sizes to measure (default: 1k 10k 100k 1M)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--queries", type=int, default=512)
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    section = run_density_at_scale(
        sizes=args.sizes, seed=args.seed, n_queries=args.queries)
    merge_into_bench(section, output=args.output)
    print(json.dumps(section, indent=2))
    print(f"\nmerged density_at_scale into {args.output}")


if __name__ == "__main__":
    main()

"""Ablation: the sparsity term of the four-part loss (Eq. 3) on/off.

The paper's second contribution is adding sparsity to the feasibility
CF-VAE.  This ablation trains the identical model with and without the
sparsity weights and compares the mean feature drift and change counts.
"""

from dataclasses import replace

import numpy as np

from repro.core import FeasibleCFExplainer, paper_config
from repro.metrics import changed_features
from repro.utils.tables import render_table

from conftest import save_artifact


def _train_and_measure(context, config, seed=0):
    explainer = FeasibleCFExplainer(
        context.bundle.encoder, constraint_kind="unary", config=config,
        blackbox=context.blackbox, seed=seed)
    explainer.fit(context.x_train, context.y_train)
    result = explainer.explain(context.x_explain, context.desired)
    drift = float(np.abs(result.x_cf - result.x).mean())
    changes = float(changed_features(result.x, result.x_cf,
                                     context.bundle.encoder).mean())
    return result.validity_rate * 100, drift, changes


def test_ablation_sparsity_term(benchmark, adult_context, artifact_dir):
    context = adult_context
    base = paper_config("adult", "unary")
    without = replace(base, sparsity_l1_weight=0.0, sparsity_l0_weight=0.0)

    def run_both():
        with_term = _train_and_measure(context, base)
        without_term = _train_and_measure(context, without)
        return with_term, without_term

    with_term, without_term = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        ["with sparsity", *with_term],
        ["without sparsity", *without_term],
    ]
    text = render_table(
        ["variant", "validity %", "mean |delta|", "changed features"],
        rows, title="Ablation: sparsity term (Adult, unary)", digits=4)
    save_artifact("ablation_sparsity.txt", text)
    print("\n" + text)

    # The sparsity term must not destroy validity (smoke-scale threshold) ...
    assert with_term[0] >= 55.0
    # ... and should not increase the drift it is designed to shrink.
    assert with_term[1] <= without_term[1] * 1.15

"""Table IVa benchmark: the full nine-method comparison on Adult Income.

Runs every method of the paper's Table IV on the smoke-scale Adult
dataset and regenerates the comparison table.  Shape assertions encode
the paper's qualitative findings (see EXPERIMENTS.md for the
paper-vs-measured numbers at the larger `standard` scale).
"""

from repro.experiments import build_table4, run_table4

from conftest import save_artifact


def test_table4a_adult(benchmark, artifact_dir):
    reports = benchmark.pedantic(
        run_table4, args=("adult",), kwargs={"scale": "smoke"},
        rounds=1, iterations=1)
    text, _ = build_table4(reports, "Adult Income dataset")
    save_artifact("table4a_adult.txt", text)
    print("\n" + text)

    by_name = {report.method: report for report in reports}
    ours_unary = by_name["ours_unary"]
    ours_binary = by_name["ours_binary"]

    # Paper shape: our models reach ~100% validity on Adult...
    assert ours_unary.validity >= 90.0
    assert ours_binary.validity >= 90.0
    # ...with the top unary feasibility among VAE-family methods,
    assert ours_unary.feasibility_unary >= by_name["revise"].feasibility_unary
    assert ours_unary.feasibility_unary >= by_name["cchvae"].feasibility_unary
    # ...while CEM wins sparsity but not the overall trade-off.
    assert by_name["cem"].sparsity <= ours_unary.sparsity

"""Ablation: the latent perturbation scale.

Section III-C: "Since we are aiming to generate counterfactuals ... we
perturbed the output of the encoder to the decoder."  This sweep varies
the perturbation scale and records validity/feasibility and drift.
"""

from dataclasses import replace

import numpy as np

from repro.core import FeasibleCFExplainer, paper_config
from repro.utils.tables import render_table

from conftest import save_artifact

NOISE_SCALES = (0.0, 0.1, 0.3)


def test_ablation_latent_noise(benchmark, adult_context, artifact_dir):
    context = adult_context
    base = paper_config("adult", "unary")

    def sweep():
        rows = []
        for scale in NOISE_SCALES:
            config = replace(base, latent_noise=scale)
            explainer = FeasibleCFExplainer(
                context.bundle.encoder, constraint_kind="unary",
                config=config, blackbox=context.blackbox, seed=0)
            explainer.fit(context.x_train, context.y_train)
            result = explainer.explain(context.x_explain, context.desired)
            drift = float(np.abs(result.x_cf - result.x).mean())
            rows.append([scale, result.validity_rate * 100,
                         result.feasibility_rate * 100, drift])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = render_table(
        ["latent noise", "validity %", "feasibility %", "mean |delta|"],
        rows, title="Ablation: latent perturbation scale (Adult, unary)",
        digits=4)
    save_artifact("ablation_latent_noise.txt", text)
    print("\n" + text)

    # all variants should train a usable generator
    assert all(row[1] >= 50.0 for row in rows)

"""Shared benchmark fixtures.

Each benchmark regenerates one table or figure of the paper.  Rendered
artifacts are written to ``benchmarks/_artifacts/`` so a full
``pytest benchmarks/ --benchmark-only`` run leaves the complete set of
reproduced tables and figures on disk.
"""

import pathlib

import pytest

from repro.experiments import prepare_context

ARTIFACT_DIR = pathlib.Path(__file__).parent / "_artifacts"


@pytest.fixture(scope="session")
def artifact_dir():
    """Directory collecting the rendered tables/figures."""
    ARTIFACT_DIR.mkdir(exist_ok=True)
    return ARTIFACT_DIR


def save_artifact(name, text):
    """Write one rendered artifact (helper usable without the fixture)."""
    ARTIFACT_DIR.mkdir(exist_ok=True)
    path = ARTIFACT_DIR / name
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def adult_context():
    """Smoke-scale Adult context shared by several benchmarks."""
    return prepare_context("adult", scale="smoke", seed=0)

"""Ablation: sweep of the causal-constraint penalty weight.

DESIGN.md calls out the feasibility weight as the paper's central loss
knob ("feasibility was utilized both as a learning parameter and as an
evaluation metric").  This sweep shows feasibility rising with the
weight while validity stays near 100%.
"""

from dataclasses import replace

from repro.core import FeasibleCFExplainer, paper_config
from repro.utils.tables import render_table

from conftest import save_artifact

WEIGHTS = (0.0, 1.0, 5.0, 15.0)


def test_ablation_constraint_weight(benchmark, adult_context, artifact_dir):
    context = adult_context
    base = paper_config("adult", "unary")

    def sweep():
        rows = []
        for weight in WEIGHTS:
            config = replace(base, feasibility_weight=weight)
            explainer = FeasibleCFExplainer(
                context.bundle.encoder, constraint_kind="unary",
                config=config, blackbox=context.blackbox, seed=0)
            explainer.fit(context.x_train, context.y_train)
            result = explainer.explain(context.x_explain, context.desired)
            rows.append([weight, result.validity_rate * 100,
                         result.feasibility_rate * 100])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = render_table(
        ["feasibility weight", "validity %", "feasibility %"],
        rows, title="Ablation: constraint penalty weight (Adult, unary)")
    save_artifact("ablation_constraint_weight.txt", text)
    print("\n" + text)

    feasibilities = [row[2] for row in rows]
    # the heaviest weight should not land below the unconstrained run
    assert feasibilities[-1] >= feasibilities[0] - 5.0

"""Benchmark: density-aware counterfactual selection (Figure 3).

Times candidate generation + selection and verifies the Figure 3 policy:
the selector's picks are at least as feasible as the deterministic
output and land in denser feasible regions than proximity-only picks.
"""


from repro.core import DensityCFSelector, FeasibleCFExplainer, paper_config
from repro.utils.tables import render_table

from conftest import save_artifact


def test_density_selection(benchmark, adult_context, artifact_dir):
    context = adult_context
    explainer = FeasibleCFExplainer(
        context.bundle.encoder, constraint_kind="unary",
        config=paper_config("adult", "unary"),
        blackbox=context.blackbox, seed=0)
    explainer.fit(context.x_train, context.y_train)

    selector = DensityCFSelector(explainer, density_weight=2.0, k_neighbors=8)
    selector.fit_reference(context.x_train[:500])
    x = context.x_explain[:30]

    x_cf, diagnostics = benchmark.pedantic(
        selector.explain, args=(x,), kwargs={"n_candidates": 15},
        rounds=1, iterations=1)

    deterministic = explainer.explain(x, context.desired[:30]).x_cf
    proximity_only = DensityCFSelector(
        explainer, density_weight=1e-9, k_neighbors=8)
    proximity_only.density_model = selector.density_model
    x_cf_proximal, _ = proximity_only.explain(x, n_candidates=15)

    rows = [
        ["deterministic (no selection)",
         float(explainer.constraints.satisfaction_rate(x, deterministic) * 100),
         float(selector.density_score(deterministic).mean())],
        ["proximity-only selection",
         float(explainer.constraints.satisfaction_rate(x, x_cf_proximal) * 100),
         float(selector.density_score(x_cf_proximal).mean())],
        ["density-aware selection",
         float(explainer.constraints.satisfaction_rate(x, x_cf) * 100),
         float(selector.density_score(x_cf).mean())],
    ]
    text = render_table(
        ["policy", "feasibility %", "mean kNN dist to feasible refs"],
        rows, title="Figure 3 selection policy (Adult, unary)", digits=4)
    save_artifact("density_selection.txt", text)
    print("\n" + text)

    # density-aware picks must sit in regions at least as dense as
    # proximity-only picks
    assert rows[2][2] <= rows[1][2] + 1e-9
    # and selection never hurts feasibility vs the deterministic output
    assert rows[2][1] >= rows[0][1] - 10.0

"""Benchmark: scaled serving tier smoke (replica sweep, verify-only).

A focused, budgeted runner for the ``serve_scale`` perfbench section:
it replays the cache-bound single-row trace at the requested replica
counts, prints a sustained-throughput / p50 / p99 markdown table and
enforces a wall-clock budget — the shape CI wants for a quick "does the
scaled tier still serve and still scale" check without paying for the
full engine benchmark.

By default the run is verify-only: it does NOT touch
``BENCH_engine.json`` (whose committed ``serve_scale`` section is the
full 1/2/4-replica sweep written by ``bench_perf_engine.py``).  Pass
``--merge`` to fold the measured section into an existing results file
instead.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serve_scale.py \
        --replicas 1 2 --budget 120
"""

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_engine.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.perfbench import (  # noqa: E402
    MIN_SERVE_SCALE_SPEEDUP,
    PERF_SCALES,
    _serve_scale_section,
)


def render_markdown(section):
    """Replicas-vs-throughput markdown table for the CI job summary."""
    lines = [
        "### Scaled serving tier (`serve_scale`)",
        "",
        f"{section['requests']} single-row requests over "
        f"{section['rows']} distinct rows, per-replica cache "
        f"{section['cache_per_replica']} rows, "
        f"{section['backend']}-backed pool.",
        "",
        "| replicas | rows/s | p50 ms | p99 ms | cache hit rate |",
        "|---:|---:|---:|---:|---:|",
    ]
    for entry in section["replicas"]:
        lines.append(
            f"| {entry['replicas']} | {entry['rows_per_sec']:,.1f} "
            f"| {entry['p50_ms']:.3f} | {entry['p99_ms']:.3f} "
            f"| {100 * entry['hit_rate']:.1f}% |")
    speedup = section.get("speedup_4_replicas_vs_1")
    if speedup is not None:
        lines.append("")
        lines.append(
            f"4-replica speedup vs 1: **{speedup:.2f}x** "
            f"(floor {MIN_SERVE_SCALE_SPEEDUP}x).")
    return "\n".join(lines) + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=("smoke", "full"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--replicas", type=int, nargs="+", default=[1, 2],
                        help="replica counts to sweep (default: 1 2)")
    parser.add_argument("--budget", type=float, default=None,
                        help="fail if the sweep exceeds this many seconds")
    parser.add_argument("--merge", type=pathlib.Path, default=None,
                        metavar="RESULTS_JSON",
                        help="fold the measured serve_scale section into "
                             "this existing results file (default: "
                             "verify-only, nothing written)")
    parser.add_argument("--summary", type=pathlib.Path, default=None,
                        help="file to append the markdown table to "
                             "(e.g. $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(argv)

    spec = PERF_SCALES[args.scale]
    start = time.perf_counter()
    section = _serve_scale_section(
        spec, seed=args.seed, replica_counts=args.replicas)
    elapsed = time.perf_counter() - start

    markdown = render_markdown(section)
    print(markdown)
    print(f"sweep wall clock: {elapsed:.1f}s")
    if args.summary is not None:
        with open(args.summary, "a") as handle:
            handle.write(markdown)

    if args.merge is not None:
        results = json.loads(args.merge.read_text())
        results["serve_scale"] = section
        args.merge.write_text(json.dumps(results, indent=2) + "\n")
        print(f"merged serve_scale section into {args.merge}")

    if args.budget is not None and elapsed > args.budget:
        print(
            f"BUDGET EXCEEDED: serve_scale sweep took {elapsed:.1f}s "
            f"(budget {args.budget:.0f}s)", file=sys.stderr)
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Table IVc benchmark: the nine-method comparison on the Law School dataset."""

from repro.experiments import build_table4, run_table4

from conftest import save_artifact


def test_table4c_law(benchmark, artifact_dir):
    reports = benchmark.pedantic(
        run_table4, args=("law_school",), kwargs={"scale": "smoke"},
        rounds=1, iterations=1)
    text, _ = build_table4(reports, "Law School dataset")
    save_artifact("table4c_law.txt", text)
    print("\n" + text)

    by_name = {report.method: report for report in reports}
    # Paper shape: every strong method reaches ~100% validity on Law
    # School, ours achieves top-tier feasibility.
    assert by_name["ours_unary"].validity >= 90.0
    assert by_name["ours_unary"].feasibility_unary >= 80.0
    assert by_name["ours_binary"].feasibility_binary >= 80.0

"""Ablation: immutable-attribute freezing on/off.

Section III-C disables immutable attributes (race, gender) during VAE
training and restores them at prediction time.  Turning the projection
off lets the generator edit protected attributes — this ablation counts
how often that actually happens, which is the paper's justification for
the mechanism.
"""

import numpy as np

from repro.constraints import ImmutableProjector, build_constraints
from repro.core import paper_config
from repro.core.generator import CFVAEGenerator
from repro.models import ConditionalVAE
from repro.utils.tables import render_table

from conftest import save_artifact


class _IdentityProjector:
    """Projection disabled: counterfactuals keep whatever the decoder emits."""

    def project(self, x, x_cf):
        return np.asarray(x_cf, dtype=np.float64)

    def project_tensor(self, x, x_cf):
        return x_cf


def _run(context, projector, seed=0):
    vae = ConditionalVAE(context.bundle.encoder.n_encoded,
                         np.random.default_rng(seed + 3))
    generator = CFVAEGenerator(
        vae, context.blackbox, build_constraints(context.bundle.encoder, "unary"),
        projector, paper_config("adult", "unary"),
        rng=np.random.default_rng(seed + 4))
    generator.fit(context.x_train)
    x_cf = generator.generate(context.x_explain, context.desired)
    mask = context.bundle.encoder.immutable_mask()
    drift = np.abs(x_cf[:, mask] - context.x_explain[:, mask])
    violated = float((drift > 1e-6).any(axis=1).mean() * 100)
    validity = float(
        (context.blackbox.predict(x_cf) == context.desired).mean() * 100)
    return validity, violated


def test_ablation_immutables(benchmark, adult_context, artifact_dir):
    context = adult_context

    def run_both():
        frozen = _run(context, ImmutableProjector(context.bundle.encoder))
        free = _run(context, _IdentityProjector())
        return frozen, free

    frozen, free = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        ["projection on", frozen[0], frozen[1]],
        ["projection off", free[0], free[1]],
    ]
    text = render_table(
        ["variant", "validity %", "rows touching immutables %"],
        rows, title="Ablation: immutable-attribute freezing (Adult, unary)")
    save_artifact("ablation_immutables.txt", text)
    print("\n" + text)

    # with projection on, immutables never change
    assert frozen[1] == 0.0
    # without it the decoder drifts protected attributes on some rows
    assert free[1] >= frozen[1]

"""Benchmark: in-objective (six-part) training smoke (verify-only).

A focused, budgeted runner for the ``inloss`` perfbench section: it
trains the four-part post-hoc baseline and the six-part in-loss
objective on a shared black-box, replays the same fixed candidate sweep
through both, prints a candidates-per-accepted-CF markdown table and
enforces a wall-clock budget — the shape CI wants for a quick "does
in-objective training still pay for itself" check without paying for
the full engine benchmark.

By default the run is verify-only: it does NOT touch
``BENCH_engine.json`` (whose committed ``inloss`` section is written by
``bench_perf_engine.py``).  Pass ``--merge`` to fold the measured
section into an existing results file instead.

Run directly::

    PYTHONPATH=src python benchmarks/bench_inloss.py --budget 120
"""

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_engine.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.data import load_dataset  # noqa: E402
from repro.experiments.perfbench import (  # noqa: E402
    MIN_INLOSS_REDUCTION,
    PERF_SCALES,
    _inloss_section,
)


def render_markdown(section):
    """Baseline-vs-in-loss markdown table for the CI job summary."""
    lines = [
        "### In-objective training (`inloss`)",
        "",
        f"{section['rows']} undesired-class rows x "
        f"{section['n_candidates']} candidates, {section['epochs']} "
        f"CF-VAE epochs; acceptance = valid + feasible + dense "
        f"(held-out q{section['density_quantile']}) + causally "
        f"plausible (tol {section['causal_tolerance']}).",
        "",
        "| objective | accepted | candidates/accepted | rows with CF "
        "| validity |",
        "|---|---:|---:|---:|---:|",
    ]
    for label, key in (("four-part (post-hoc)", "posthoc"),
                       ("six-part (in-loss)", "inloss")):
        entry = section[key]
        per_accepted = f"{entry['candidates_per_accepted']:,.2f}"
        if entry["accepted"] == 0:
            per_accepted = f">{per_accepted}"  # lower bound: none accepted
        lines.append(
            f"| {label} | {entry['accepted']} | {per_accepted} "
            f"| {100 * entry['rows_with_accepted_cf']:.1f}% "
            f"| {100 * entry['validity']:.1f}% |")
    lines.append("")
    lines.append(
        f"Candidates-per-accepted reduction: "
        f"**{section['reduction_vs_posthoc']:.2f}x** "
        f"(floor {MIN_INLOSS_REDUCTION}x).")
    return "\n".join(lines) + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=("smoke", "full"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--budget", type=float, default=None,
                        help="fail if the run exceeds this many seconds")
    parser.add_argument("--merge", type=pathlib.Path, default=None,
                        metavar="RESULTS_JSON",
                        help="fold the measured inloss section into this "
                             "existing results file (default: verify-only, "
                             "nothing written)")
    parser.add_argument("--summary", type=pathlib.Path, default=None,
                        help="file to append the markdown table to "
                             "(e.g. $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(argv)

    spec = PERF_SCALES[args.scale]
    start = time.perf_counter()
    bundle = load_dataset("adult", n_instances=spec["n_instances"],
                          seed=args.seed)
    section = _inloss_section(bundle, spec, args.seed)
    elapsed = time.perf_counter() - start

    markdown = render_markdown(section)
    print(markdown)
    print(f"run wall clock: {elapsed:.1f}s")
    if args.summary is not None:
        with open(args.summary, "a") as handle:
            handle.write(markdown)

    if args.merge is not None:
        results = json.loads(args.merge.read_text())
        results["inloss"] = section
        args.merge.write_text(json.dumps(results, indent=2) + "\n")
        print(f"merged inloss section into {args.merge}")

    if args.budget is not None and elapsed > args.budget:
        print(
            f"BUDGET EXCEEDED: inloss run took {elapsed:.1f}s "
            f"(budget {args.budget:.0f}s)", file=sys.stderr)
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Table IVb benchmark: the nine-method comparison on KDD Census-Income."""

from repro.experiments import build_table4, run_table4

from conftest import save_artifact


def test_table4b_census(benchmark, artifact_dir):
    reports = benchmark.pedantic(
        run_table4, args=("kdd_census",), kwargs={"scale": "smoke"},
        rounds=1, iterations=1)
    text, _ = build_table4(reports, "KDD-Census Income dataset")
    save_artifact("table4b_census.txt", text)
    print("\n" + text)

    by_name = {report.method: report for report in reports}
    # Paper shape: our validity stays high on KDD even though the best
    # feasibility score goes to another method there (Section IV-E).
    assert by_name["ours_unary"].validity >= 80.0
    assert by_name["ours_binary"].validity >= 80.0
    # CEM remains the sparsity winner by a wide margin.
    assert by_name["cem"].sparsity < by_name["mahajan_unary"].sparsity

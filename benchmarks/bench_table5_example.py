"""Table V benchmark: generating one successful counterfactual example.

Times counterfactual generation for a single input on the trained binary
model and regenerates the paper's "x true vs x pred" example table,
asserting the causal-constraint satisfactions the paper highlights.
"""

import numpy as np

from repro.core import FeasibleCFExplainer, paper_config
from repro.experiments import build_table5

from conftest import save_artifact


def test_table5_example(benchmark, adult_context, artifact_dir):
    context = adult_context
    explainer = FeasibleCFExplainer(
        context.bundle.encoder, constraint_kind="binary",
        config=paper_config("adult", "binary"),
        blackbox=context.blackbox, seed=0)
    explainer.fit(context.x_train, context.y_train)

    single = context.x_explain[:1]
    result = benchmark(explainer.explain, single, np.array([1]))
    assert len(result) == 1

    # build the table from the full batch so a valid & feasible row exists
    batch = explainer.explain(context.x_explain, context.desired)
    text, index = build_table5(batch)
    save_artifact("table5_example.txt", text)
    print("\n" + text)

    if index is not None:
        inputs = batch.decoded_inputs()
        outputs = batch.decoded()
        # the paper's marked cells: age respects the causal constraints
        assert outputs["age"][index] >= inputs["age"][index] - 1e-9
        # immutables unchanged, as in the example (race, gender)
        assert outputs["race"][index] == inputs["race"][index]
        assert outputs["gender"][index] == inputs["gender"][index]

"""Figure 6 benchmark: t-SNE manifolds of the latent space per dataset.

Times the manifold extraction (latent sampling -> decoding -> labelling
-> exact t-SNE) and regenerates the three-panel ASCII figure for each
dataset, recording the separability diagnostics.
"""

import pytest

from repro.experiments import build_figure6

from conftest import save_artifact


@pytest.mark.parametrize("dataset", ["adult", "kdd_census", "law_school"])
def test_figure6_manifold(benchmark, dataset, artifact_dir):
    figure = benchmark.pedantic(
        build_figure6, args=(dataset,),
        kwargs={"scale": "smoke", "n_points": 200, "tsne_iterations": 250},
        rounds=1, iterations=1)
    art = figure.render()
    save_artifact(f"figure6_{dataset}.txt", art)
    print("\n" + art)

    assert len(figure.views) == 3
    for view in figure.views:
        assert view.embedding.shape == (200, 2)

"""Benchmark: engine hot-path throughput (train / predict / candidates).

Unlike the table/figure benchmarks this one tracks the *performance
trajectory* of the substrate itself.  It runs the fixed workload of
:mod:`repro.experiments.perfbench` and writes ``BENCH_engine.json`` at
the repository root with current throughput, the pre-fast-path baseline
and the speedup factors.

Run directly::

    PYTHONPATH=src python benchmarks/bench_perf_engine.py --scale smoke

or through pytest (writes the same JSON plus an artifact copy)::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_engine.py -q
"""

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_engine.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.perfbench import (  # noqa: E402
    MIN_KERNEL_SPEEDUP,
    run_perfbench,
    write_bench,
)

REQUIRED_SECTIONS = ("train", "predict", "candidates", "constraint_eval", "serve")

#: Acceptance floor: warm-starting from the artifact store must beat
#: retraining from scratch by at least this factor end-to-end.
MIN_SERVE_SPEEDUP = 5.0


def check_wellformed(results):
    """Raise if a benchmark result dict is missing required structure."""
    for section in REQUIRED_SECTIONS:
        if section not in results:
            raise KeyError(f"BENCH_engine results missing section {section!r}")
    for section in ("train", "predict", "candidates", "constraint_eval"):
        if results[section]["rows_per_sec"] <= 0:
            raise ValueError(f"non-positive throughput in section {section!r}")
    serve_speedup = results["serve"]["speedup_cold_vs_warm"]
    if serve_speedup < MIN_SERVE_SPEEDUP:
        raise ValueError(
            f"warm-start serving is only {serve_speedup}x faster than "
            f"cold-start; the artifact store must buy >= {MIN_SERVE_SPEEDUP}x")
    kernel_speedup = results["constraint_eval"]["speedup_compiled_vs_loop"]
    if kernel_speedup < MIN_KERNEL_SPEEDUP:
        raise ValueError(
            f"compiled feasibility kernel is only {kernel_speedup}x faster "
            f"than the loop evaluator; must hold >= {MIN_KERNEL_SPEEDUP}x")
    return True


def run_and_write(scale="smoke", seed=0, output=DEFAULT_OUTPUT):
    """Run the harness, validate and persist the JSON; returns results."""
    results = run_perfbench(scale=scale, seed=seed)
    check_wellformed(results)
    write_bench(results, output)
    return results


def test_perf_engine(artifact_dir):
    """Pytest entry: smoke-scale run, JSON written and well-formed."""
    results = run_and_write(scale="smoke")
    check_wellformed(json.loads(DEFAULT_OUTPUT.read_text()))
    artifact = artifact_dir / "bench_engine.json"
    artifact.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps({k: results[k] for k in REQUIRED_SECTIONS}, indent=2))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=("smoke", "full"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    results = run_and_write(scale=args.scale, seed=args.seed, output=args.output)
    print(json.dumps(results, indent=2))
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()

"""Table III benchmark: hyperparameter table + cost of one training epoch.

Times a single CF-VAE epoch under each Table III configuration (scaled
to the smoke dataset) and regenerates the settings table.
"""

import numpy as np
import pytest

from repro.constraints import ImmutableProjector, build_constraints
from repro.core import paper_config
from repro.core.generator import CFVAEGenerator
from repro.experiments import build_table3
from repro.models import ConditionalVAE

from conftest import save_artifact


@pytest.mark.parametrize("kind", ["unary", "binary"])
def test_one_training_epoch(benchmark, adult_context, kind):
    from dataclasses import replace

    context = adult_context
    config = replace(paper_config("adult", kind), epochs=1, warmstart_epochs=0)

    def one_epoch():
        vae = ConditionalVAE(context.bundle.encoder.n_encoded,
                             np.random.default_rng(3))
        generator = CFVAEGenerator(
            vae, context.blackbox,
            build_constraints(context.bundle.encoder, kind),
            ImmutableProjector(context.bundle.encoder),
            config, rng=np.random.default_rng(4))
        generator.fit(context.x_train)
        return generator.history[-1]["total"]

    result = benchmark.pedantic(one_epoch, rounds=2, iterations=1)
    assert np.isfinite(result)


def test_table3_rendering(benchmark, artifact_dir):
    text, rows = benchmark.pedantic(build_table3, rounds=1, iterations=1)
    assert len(rows) == 6
    save_artifact("table3.txt", text)
    print("\n" + text)

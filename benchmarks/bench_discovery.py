"""Benchmark: automatic constraint discovery (the paper's future work).

Times the miner on each dataset and asserts it re-discovers the paper's
hand-written constraints (education->age on Adult, tier->lsat on Law).
"""

import pytest

from repro.constraints import ConstraintMiner
from repro.data import load_dataset
from repro.utils.tables import render_table

from conftest import save_artifact


@pytest.mark.parametrize("dataset,expected", [
    ("adult", ("education", "age")),
    ("law_school", ("tier", "lsat")),
])
def test_discovery_finds_paper_constraints(benchmark, dataset, expected,
                                           artifact_dir):
    bundle = load_dataset(dataset, n_instances=6000, seed=0)
    miner = ConstraintMiner(bundle.encoder)

    relations = benchmark(miner.mine, bundle.frame)
    pairs = [(r.cause, r.effect) for r in relations]
    assert expected in pairs

    rows = [[r.cause, r.effect, r.rank_correlation, r.floor_monotonicity,
             r.suggested_slope] for r in relations[:8]]
    text = render_table(
        ["cause", "effect", "rho", "floor-mono", "slope"], rows,
        title=f"Discovered constraints ({dataset})", digits=3)
    save_artifact(f"discovery_{dataset}.txt", text)
    print("\n" + text)


def test_mined_constraints_train_feasible_model(benchmark, adult_context,
                                                artifact_dir):
    from repro.core import FeasibleCFExplainer, paper_config

    context = adult_context
    miner = ConstraintMiner(context.bundle.encoder)
    relations = miner.mine(context.bundle.frame, max_relations=2)
    mined_set = miner.to_constraints(relations)

    def train_and_score():
        explainer = FeasibleCFExplainer(
            context.bundle.encoder, constraints=mined_set,
            config=paper_config("adult", "binary"),
            blackbox=context.blackbox, seed=0)
        explainer.fit(context.x_train, context.y_train)
        result = explainer.explain(context.x_explain, context.desired)
        return result.feasibility_rate

    feasibility = benchmark.pedantic(train_and_score, rounds=1, iterations=1)
    assert feasibility > 0.6  # the model learns to satisfy what was mined

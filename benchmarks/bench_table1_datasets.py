"""Table I benchmark: dataset generation + cleaning + encoding throughput.

Regenerates the dataset-overview table and times the full data pipeline
(SCM sampling, missing-value cleaning, min-max/one-hot encoding, split)
for each benchmark dataset.
"""

import pytest

from repro.data import load_dataset
from repro.experiments import build_table1

from conftest import save_artifact


@pytest.mark.parametrize("dataset", ["adult", "kdd_census", "law_school"])
def test_dataset_pipeline(benchmark, dataset):
    bundle = benchmark(load_dataset, dataset, n_instances=4000, seed=0)
    assert bundle.n_clean > 0
    assert bundle.encoded.shape[0] == bundle.n_clean


def test_table1_rendering(benchmark, artifact_dir):
    text, rows = benchmark.pedantic(
        build_table1, kwargs={"scale": "fast"}, rounds=1, iterations=1)
    assert len(rows) == 3
    save_artifact("table1.txt", text)
    print("\n" + text)

"""Benchmark: one scenario per baseline strategy through the engine runner.

The matrix smoke proves every Table IV method still runs end to end on
the shared engine — one registered scenario per baseline strategy (all
six: Mahajan, REVISE, C-CHVAE, CEM, DiCE-random, FACE), fitted at a tiny
bench scale and timed on the explain path (``EngineRunner.run``), which
is the shape serving traffic takes.

Results merge into ``BENCH_engine.json`` as a ``scenario_matrix``
section (per-strategy rows/sec plus the fleet minimum), which
``check_perf_regression.py`` reports as an informational row next to the
gated fast-path sections.  Density variant rows (``<strategy>+<knn|kde>``
— the scenario registry's density-aware runner shape) and causal variant
rows (``<strategy>+<scm|mined>`` — the causal-repairing runner shape)
and robust variant rows (``<strategy>+robust`` — the ensemble-hosting
runner shape, every candidate scored against all K members) ride along
in the same section; the ``latent`` estimator needs a trained CF-VAE
and is covered by tier-1 tests instead of this smoke.  Compiled-plan
rows (``<strategy>+plan`` for the two slowest strategies, with their
``plan_speedup_vs_staged``) record what routing the same request
through a compiled ``ExplainPlan`` changes.

Run directly::

    PYTHONPATH=src python benchmarks/bench_scenario_matrix.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_scenario_matrix.py -q
"""

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_engine.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.engine import EngineRunner, build_strategy  # noqa: E402
from repro.experiments import prepare_context  # noqa: E402
from repro.experiments.runconfig import ExperimentScale  # noqa: E402

#: The six baseline strategies of Table IV, with bench-scale knobs that
#: shrink fitting (never the explain path being timed).  The two
#: VAE-decoding methods need enough decoder epochs to land in the
#: desired class at all: below ~30 epochs Mahajan's unary decoder and
#: below ~10 epochs C-CHVAE's search decoder emit class-0 rows only
#: (0% validity on this workload) — the floors pinned in
#: ``test_scenario_matrix`` guard against that regression.
BASELINE_MATRIX = (
    ("mahajan_unary", {"min_epochs": 50}),
    ("revise", {"vae_epochs": 5, "steps": 40}),
    ("cchvae", {"vae_epochs": 15, "n_candidates": 40}),
    ("cem", {"steps": 40}),
    ("dice_random", {"max_attempts": 20}),
    ("face", {}),
)

#: Density-aware variants timed on already-fitted strategies: the
#: engine runner hosts the named estimator (fitted on the desired-class
#: training rows).  Baselines propose single candidates, so hosting a
#: model adds the per-row density scoring of the Table IV column, not
#: candidate selection — the timed run requests diagnostics so that
#: scoring cost is actually on the clock.
DENSITY_VARIANTS = (
    ("face", "knn"),
    ("face", "kde"),
    ("dice_random", "knn"),
)

#: Causal-aware variants timed on already-fitted strategies: the engine
#: runner hosts the named causal model, so every proposed candidate
#: batch pays the repair pass between projection and feasibility.
CAUSAL_VARIANTS = (
    ("face", "scm"),
    ("dice_random", "scm"),
    ("dice_random", "mined"),
)

#: Robust variants timed on already-fitted strategies: the engine
#: runner hosts a K-member ensemble, so every proposed candidate pays
#: the fused cross-model validity scoring and quorum selection.
ROBUST_VARIANTS = (
    ("face", 4),
    ("dice_random", 4),
)

#: Compiled-plan variants: the two slowest matrix strategies re-timed
#: through a compiled :class:`repro.engine.ExplainPlan`
#: (``runner.compile`` + fused replay) instead of the staged chain.
#: Informational — proposal cost dominates both methods, so the
#: recorded ``plan_speedup_vs_staged`` shows what plan compilation buys
#: on proposal-heavy workloads (the perfbench ``plan`` section gates
#: the chain-dominated shape).
PLAN_VARIANTS = ("cchvae", "revise")

#: Tiny fixed workload so the matrix stays a smoke test.
BENCH_SCALE = ExperimentScale("scenario-bench", 1500, 24, 6)


def run_matrix(seed=0):
    """Fit and time every baseline scenario; returns the section dict."""
    from repro.causal import fit_causal
    from repro.density import fit_class_density
    from repro.models import train_ensemble

    context = prepare_context("adult", scale=BENCH_SCALE, seed=seed)
    encoder = context.bundle.encoder
    runner = EngineRunner(encoder, context.blackbox)

    def timed_run(run_runner, strategy, plan=None):
        # diagnostics force the density/causal/ensemble scoring pass
        # (when hosted) into the timed window — the shape
        # runner.evaluate serves
        diagnostics = (run_runner.density is not None
                       or run_runner.causal is not None
                       or run_runner.ensemble is not None)
        run_runner.run(strategy, context.x_explain, context.desired,
                       plan=plan)  # warm-up
        start = time.perf_counter()
        result = run_runner.run(
            strategy, context.x_explain, context.desired,
            return_diagnostics=diagnostics, plan=plan)
        explain_seconds = max(time.perf_counter() - start, 1e-9)
        if diagnostics:
            result = result[0]
        # validity and valid_rows both come from the timed run: stochastic
        # strategies (dice_random) would otherwise report two different runs
        return {
            "rows_per_sec": round(len(context.x_explain) / explain_seconds, 1),
            "validity": round(float(result.valid.mean()) * 100.0, 2),
            "valid_rows": int(np.count_nonzero(result.valid)),
        }

    strategies = {}
    fitted = {}
    for name, params in BASELINE_MATRIX:
        start = time.perf_counter()
        strategy = build_strategy(
            name, encoder, context.blackbox, dataset="adult", seed=seed,
            **params)
        strategy.fit(context.x_train, context.y_train)
        fit_seconds = time.perf_counter() - start
        fitted[name] = strategy

        strategies[name] = dict(timed_run(runner, strategy),
                                fit_seconds=round(fit_seconds, 3))

    for name, density_name in DENSITY_VARIANTS:
        model = fit_class_density(
            density_name, context.x_train, context.y_train,
            context.bundle.schema.desired_class)
        dense_runner = EngineRunner(encoder, context.blackbox, density=model)
        strategies[f"{name}+{density_name}"] = timed_run(
            dense_runner, fitted[name])

    for name, causal_name in CAUSAL_VARIANTS:
        model = fit_causal(
            causal_name, encoder, context.x_train, context.y_train)
        causal_runner = EngineRunner(encoder, context.blackbox, causal=model)
        strategies[f"{name}+{causal_name}"] = timed_run(
            causal_runner, fitted[name])

    ensembles = {}
    for name, n_members in ROBUST_VARIANTS:
        if n_members not in ensembles:
            ensembles[n_members] = train_ensemble(
                context.x_train, context.y_train, n_members=n_members,
                seed=seed, epochs=BENCH_SCALE.blackbox_epochs,
                include=context.blackbox)
        robust_runner = EngineRunner(
            encoder, context.blackbox, ensemble=ensembles[n_members])
        strategies[f"{name}+robust"] = timed_run(robust_runner, fitted[name])

    for name in PLAN_VARIANTS:
        plan = runner.compile(fitted[name])
        entry = timed_run(runner, fitted[name], plan=plan)
        entry["plan_speedup_vs_staged"] = round(
            entry["rows_per_sec"] / strategies[name]["rows_per_sec"], 2)
        strategies[f"{name}+plan"] = entry

    rates = [entry["rows_per_sec"] for entry in strategies.values()]
    return {
        "rows": len(context.x_explain),
        "n_strategies": len(strategies),
        "n_density_variants": len(DENSITY_VARIANTS),
        "n_causal_variants": len(CAUSAL_VARIANTS),
        "n_robust_variants": len(ROBUST_VARIANTS),
        "n_plan_variants": len(PLAN_VARIANTS),
        "min_rows_per_sec": round(min(rates), 1),
        "strategies": strategies,
    }


def merge_into_bench(section, output=DEFAULT_OUTPUT):
    """Attach the matrix section to BENCH_engine.json (if it exists)."""
    if output.exists():
        results = json.loads(output.read_text())
    else:
        results = {"benchmark": "engine_fast_path"}
    results["scenario_matrix"] = section
    output.write_text(json.dumps(results, indent=2) + "\n")
    return output


def test_scenario_matrix(artifact_dir):
    """Pytest entry: every baseline runs through the engine, JSON merged."""
    section = run_matrix(seed=0)
    assert section["n_strategies"] == (
        len(BASELINE_MATRIX) + len(DENSITY_VARIANTS) + len(CAUSAL_VARIANTS)
        + len(ROBUST_VARIANTS) + len(PLAN_VARIANTS))
    assert section["min_rows_per_sec"] > 0
    # validity floors for the two VAE-decoding methods: both sat at 0%
    # on this workload when their decoders were undertrained
    assert section["strategies"]["mahajan_unary"]["validity"] >= 90.0
    assert section["strategies"]["cchvae"]["validity"] >= 50.0
    merge_into_bench(section)
    artifact = artifact_dir / "bench_scenario_matrix.json"
    artifact.write_text(json.dumps(section, indent=2) + "\n")
    print(json.dumps(section, indent=2))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    section = run_matrix(seed=args.seed)
    merge_into_bench(section, output=args.output)
    print(json.dumps(section, indent=2))
    print(f"\nmerged scenario_matrix into {args.output}")


if __name__ == "__main__":
    main()

"""Setuptools shim.

All project metadata lives in ``pyproject.toml``.  This file exists only
because the evaluation environment has an old setuptools and no ``wheel``
package, so PEP 660 editable installs fail; it enables the legacy path:
``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import setup

setup(name="repro", version="0.1.0", package_dir={"": "src"})

"""Setuptools shim.

The evaluation environment has an old setuptools and no ``wheel`` package,
so PEP 660 editable installs fail; this file enables the legacy path:
``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import setup

setup()

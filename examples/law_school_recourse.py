"""Law-school recourse: unary vs binary causal-constraint models.

For students predicted to fail the bar exam, compares the two constraint
models of the paper on the Law School dataset:

* unary  — the LSAT score must not decrease (Eq. 1),
* binary — moving to a more selective school tier additionally requires
  a strictly higher LSAT (Eq. 2).

Run with:  python examples/law_school_recourse.py
"""

import numpy as np

from repro.constraints import build_constraints
from repro.core import FeasibleCFExplainer, paper_config
from repro.data import load_dataset
from repro.utils.tables import render_table


def main():
    bundle = load_dataset("law_school", n_instances=6000, seed=2)
    x_train, y_train = bundle.split("train")
    x_test, _ = bundle.split("test")

    results = {}
    shared_blackbox = None
    for kind in ("unary", "binary"):
        print(f"Training the {kind}-constraint model ...")
        explainer = FeasibleCFExplainer(
            bundle.encoder, constraint_kind=kind,
            config=paper_config("law_school", kind), blackbox=shared_blackbox, seed=2)
        explainer.fit(x_train, y_train)
        shared_blackbox = explainer.blackbox
        results[kind] = explainer

    failing = x_test[shared_blackbox.predict(x_test) == 0][:120]
    desired = np.ones(len(failing), dtype=int)

    rows = []
    for kind, explainer in results.items():
        batch = explainer.explain(failing, desired)
        # evaluate both constraint sets on each model's output
        unary_set = build_constraints(bundle.encoder, "unary")
        binary_set = build_constraints(bundle.encoder, "binary")
        rows.append([
            f"{kind}-constraint model",
            batch.validity_rate * 100,
            unary_set.satisfaction_rate(failing, batch.x_cf) * 100,
            binary_set.satisfaction_rate(failing, batch.x_cf) * 100,
        ])

    print()
    print(render_table(
        ["model", "validity %", "unary feasibility %", "binary feasibility %"],
        rows, title="Law School: effect of the constraint model"))

    batch = results["binary"].explain(failing, desired)
    qualifying = [i for i in range(len(batch))
                  if batch.valid[i] and batch.feasible[i]]
    if qualifying:
        index = qualifying[0]
        print("\nExample recourse for one student (binary model):\n")
        print(batch.comparison(index))
        decoded_in = batch.decoded_inputs()
        decoded_out = batch.decoded()
        print(f"\nNote: lsat moved {decoded_in['lsat'][index]:.1f} -> "
              f"{decoded_out['lsat'][index]:.1f} (never downward), and any "
              f"tier improvement is backed by an LSAT increase.")


if __name__ == "__main__":
    main()

"""Quickstart: train the feasibility CF-VAE on Adult and explain one person.

Runs the full pipeline of the paper on a small synthetic Adult sample:
generate data, train the black-box, train the counterfactual generator
with causal constraints + sparsity, and print a Table V style
"x true vs x pred" comparison for one denied individual.

Run with:  python examples/quickstart.py
"""

from repro.core import FeasibleCFExplainer, paper_config
from repro.data import load_dataset


def main():
    print("Loading the (synthetic) Adult Income dataset ...")
    bundle = load_dataset("adult", n_instances=6000, seed=0)
    x_train, y_train = bundle.split("train")
    x_test, _ = bundle.split("test")
    print(f"  {bundle.n_raw} raw rows -> {bundle.n_clean} after cleaning, "
          f"{bundle.encoder.n_encoded} encoded columns")

    print("Training black-box + CF-VAE (unary constraint: age must not decrease) ...")
    explainer = FeasibleCFExplainer(
        bundle.encoder, constraint_kind="unary",
        config=paper_config("adult", "unary"), seed=0)
    explainer.fit(x_train, y_train)

    denied = x_test[explainer.blackbox.predict(x_test) == 0]
    print(f"Explaining {len(denied)} individuals classified as <=50k ...")
    result = explainer.explain(denied)

    print(f"\nvalidity   : {result.validity_rate:6.1%}  "
          f"(counterfactual reaches the desired class)")
    print(f"feasibility: {result.feasibility_rate:6.1%}  "
          f"(causal constraints satisfied)")

    print("\nOne successful counterfactual (cf. paper Table V):\n")
    qualifying = [i for i in range(len(result))
                  if result.valid[i] and result.feasible[i]]
    print(result.comparison(qualifying[0] if qualifying else 0))


if __name__ == "__main__":
    main()

"""Manifold exploration: where do the feasible counterfactuals live?

Reproduces the paper's Figure 6 pipeline on a dataset of your choice:
sample latent points from the trained CF-VAE, decode them, label each
decoded example feasible/infeasible under the causal constraints, and
project the latent space to 2-D with the from-scratch exact t-SNE.
Prints ASCII manifolds plus the density diagnostics that quantify the
separability the paper reads off its colour plots.

Run with:  python examples/manifold_exploration.py [adult|kdd_census|law_school]
"""

import sys

from repro.experiments import build_figure6


def main():
    dataset = sys.argv[1] if len(sys.argv) > 1 else "adult"
    print(f"Building Figure 6 manifolds for {dataset!r} "
          f"(train CF-VAE, sample latents, decode, t-SNE) ...\n")
    figure = build_figure6(dataset, scale="fast", n_points=300,
                           tsne_iterations=350)
    print(figure.render())

    print("\nInterpretation: knn-agreement near 1.0 means feasible and "
          "infeasible examples occupy separate regions of the manifold; "
          "near the feasible base rate means they are mixed.")


if __name__ == "__main__":
    main()

"""Serving quickstart: train once, persist, warm-start, answer 1k rows.

Walks the full serving loop the docs describe (docs/serving.md):

1. train a pipeline cold (black-box + CF-VAE),
2. persist it into an :class:`repro.serve.ArtifactStore`,
3. warm-start an :class:`repro.serve.ExplanationService` from disk, as a
   fresh serving process would,
4. answer a 1,000-row batch, then answer it again from the result cache,
5. coalesce a handful of single-row requests into one vectorized sweep.

Run with::

    PYTHONPATH=src python examples/serve_quickstart.py
"""

import tempfile
import time

import numpy as np

from repro.core import fast_config
from repro.serve import ArtifactStore, ExplanationService, train_pipeline


def main():
    rng = np.random.default_rng(0)

    # 1. Cold start: the full train path (this is the cost the artifact
    #    store makes a one-time cost instead of a per-process cost).
    start = time.perf_counter()
    pipeline = train_pipeline("adult", scale="fast", seed=0, config=fast_config())
    cold_seconds = time.perf_counter() - start
    print(f"cold start (train blackbox + CF-VAE): {cold_seconds:6.2f}s "
          f"(blackbox accuracy {pipeline.blackbox_accuracy:.3f})")

    with tempfile.TemporaryDirectory() as tmp:
        # 2. Persist.
        store = ArtifactStore(tmp)
        store.save(pipeline, name="quickstart")
        print(f"saved artifact {store.artifact_dir('quickstart')}")

        # 3. Warm start, as a fresh process would.
        start = time.perf_counter()
        service = ExplanationService.warm_start(store, "quickstart")
        warm_seconds = time.perf_counter() - start
        print(f"warm start (load + verify artifact):  {warm_seconds:6.4f}s "
              f"({cold_seconds / warm_seconds:,.0f}x faster than cold)")

        # 4. A 1k-row batch: sample encoded rows from the dataset.
        encoded = pipeline.bundle.encoded
        batch = encoded[rng.integers(0, len(encoded), size=1000)]

        start = time.perf_counter()
        result = service.explain_batch(batch)
        batch_seconds = time.perf_counter() - start
        print(f"explain_batch of {len(batch)} rows:        {batch_seconds:6.4f}s "
              f"(validity {result.validity_rate:.2f}, "
              f"feasibility {result.feasibility_rate:.2f})")

        start = time.perf_counter()
        service.explain_batch(batch)
        cached_seconds = time.perf_counter() - start
        print(f"same batch from the LRU cache:       {cached_seconds:6.4f}s")

        # 5. Micro-batching: single-row tickets, one vectorized flush.
        tickets = [service.submit(row) for row in batch[:8]]
        service.flush(n_candidates=12, rng=rng)
        usable = sum(t.result()["valid"] and t.result()["feasible"]
                     for t in tickets)
        print(f"coalesced 8 single-row tickets in 1 sweep; "
              f"{usable}/8 valid & feasible")

        stats = service.stats
        print(f"service stats: {stats['rows_served']} rows served, "
              f"{stats['cache_hits']} cache hits, "
              f"{stats['rows_coalesced']} rows coalesced")


if __name__ == "__main__":
    main()

"""Census feasibility audit: which explainer can a regulator trust?

Audits every counterfactual method on the (synthetic) KDD Census-Income
dataset: for each method it reports how often the generated recourse is
valid, how often it violates each causal constraint, and whether it
touches protected attributes.  This is the "auditing third-party
explainers" use of the library — the constraint objects double as
compliance checks.

Run with:  python examples/census_audit.py
"""


from repro.baselines import (
    CEMExplainer,
    DiceRandomExplainer,
    FACEExplainer,
    ReviseExplainer,
)
from repro.constraints import ImmutablesRespected, build_constraints
from repro.core import FeasibleCFExplainer, paper_config
from repro.experiments import prepare_context
from repro.utils.tables import render_table


def main():
    print("Preparing the KDD Census-Income audit context ...")
    context = prepare_context("kdd_census", scale="fast", seed=0)
    encoder = context.bundle.encoder
    unary = build_constraints(encoder, "unary")
    binary = build_constraints(encoder, "binary")
    immutables = ImmutablesRespected(encoder)
    x, desired = context.x_explain, context.desired

    methods = {}
    ours = FeasibleCFExplainer(
        encoder, constraint_kind="binary",
        config=paper_config("kdd_census", "binary"),
        blackbox=context.blackbox, seed=0)
    ours.fit(context.x_train, context.y_train)
    methods["Ours (binary)"] = ours.explain(x, desired).x_cf

    for label, cls in (("REVISE", ReviseExplainer), ("CEM", CEMExplainer),
                       ("DiCE random", DiceRandomExplainer),
                       ("FACE", FACEExplainer)):
        print(f"  running {label} ...")
        explainer = cls(encoder, context.blackbox, seed=0)
        explainer.fit(context.x_train, context.y_train)
        methods[label] = explainer.generate(x, desired)

    rows = []
    for label, x_cf in methods.items():
        rows.append([
            label,
            float((context.blackbox.predict(x_cf) == desired).mean() * 100),
            float((1 - unary.satisfaction_rate(x, x_cf)) * 100),
            float((1 - binary.satisfaction_rate(x, x_cf)) * 100),
            float((1 - immutables.satisfaction_rate(x, x_cf)) * 100),
        ])

    print()
    print(render_table(
        ["method", "validity %", "age-decrease violations %",
         "education/age violations %", "protected-attribute edits %"],
        rows, title=f"Census audit ({len(x)} individuals)"))
    print("\nEvery method projects immutables here, so protected-attribute "
          "edits stay at zero; the causal columns are where the methods "
          "separate.")


if __name__ == "__main__":
    main()

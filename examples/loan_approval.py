"""Loan-approval recourse: the paper's motivating scenario, end to end.

"What should an individual change so the bank grants the loan they now
cannot get?" — compares the feasibility-aware model against two
baselines (CEM and DiCE-random) on the same denied applicants and shows
why raw sparsity is not enough: the sparsest counterfactuals often break
the causal constraints (e.g. suggest getting younger).

Run with:  python examples/loan_approval.py
"""

import numpy as np

from repro.baselines import CEMExplainer, DiceRandomExplainer
from repro.core import FeasibleCFExplainer, paper_config
from repro.data import load_dataset
from repro.metrics import (
    ProximityStats,
    evaluate_counterfactuals,
)
from repro.utils.tables import render_table


def main():
    bundle = load_dataset("adult", n_instances=6000, seed=1)
    x_train, y_train = bundle.split("train")
    x_test, _ = bundle.split("test")

    print("Training the feasibility model (binary constraint: more education "
          "requires more age) ...")
    ours = FeasibleCFExplainer(
        bundle.encoder, constraint_kind="binary",
        config=paper_config("adult", "binary"), seed=1)
    ours.fit(x_train, y_train)
    blackbox = ours.blackbox

    denied = x_test[blackbox.predict(x_test) == 0][:100]
    desired = np.ones(len(denied), dtype=int)
    stats = ProximityStats(bundle.encoder).fit(x_train)

    print(f"Generating recourse for {len(denied)} denied applicants "
          f"with three methods ...\n")
    rows = []
    for name, x_cf in (
        ("Ours (feasible+sparse)", ours.explain(denied, desired).x_cf),
        ("CEM", _fit_generate(CEMExplainer, bundle, blackbox, x_train,
                              y_train, denied, desired)),
        ("DiCE random", _fit_generate(DiceRandomExplainer, bundle, blackbox,
                                      x_train, y_train, denied, desired)),
    ):
        report = evaluate_counterfactuals(
            name, denied, x_cf, desired, blackbox, bundle.encoder, stats=stats)
        rows.append([name, report.validity, report.feasibility_binary,
                     report.sparsity])

    print(render_table(
        ["method", "validity %", "feasibility (binary) %", "features changed"],
        rows, title="Loan recourse: validity vs feasibility vs sparsity"))
    print("\nThe sparsest suggestions are not automatically actionable: "
          "only the constraint-trained model keeps causal feasibility high.")


def _fit_generate(cls, bundle, blackbox, x_train, y_train, denied, desired):
    explainer = cls(bundle.encoder, blackbox, seed=1)
    explainer.fit(x_train, y_train)
    return explainer.generate(denied, desired)


if __name__ == "__main__":
    main()

"""Constraint discovery: mine the causal constraints instead of writing them.

Implements the paper's stated future work — "analysing the causal
relations of various features in a dataset, so that we can minimize the
human involvement during the construction of the causal constraint" —
and closes the loop: mine relations from data, turn the strongest into
executable constraints, train the CF-VAE against them, and verify the
resulting counterfactuals also satisfy the paper's hand-written
constraint catalog.

Run with:  python examples/constraint_discovery.py [adult|kdd_census|law_school]
"""

import sys

from repro.constraints import ConstraintMiner, build_constraints
from repro.core import FeasibleCFExplainer, paper_config
from repro.data import load_dataset
from repro.utils.tables import render_table


def main():
    dataset = sys.argv[1] if len(sys.argv) > 1 else "adult"
    bundle = load_dataset(dataset, n_instances=8000, seed=0)

    print(f"Mining causal relations from the cleaned {dataset} data ...\n")
    miner = ConstraintMiner(bundle.encoder)
    relations = miner.mine(bundle.frame, max_relations=5)
    rows = [[r.cause, r.effect, r.rank_correlation, r.floor_monotonicity,
             r.suggested_slope] for r in relations]
    print(render_table(
        ["cause", "effect", "spearman rho", "floor monotonicity", "slope"],
        rows, title="Discovered 'cause up => effect up' relations", digits=3))

    print("\nTraining the CF-VAE against the top mined constraints "
          "(no hand-written catalog) ...")
    mined_set = miner.to_constraints(relations[:2])
    x_train, y_train = bundle.split("train")
    explainer = FeasibleCFExplainer(
        bundle.encoder, constraints=mined_set,
        config=paper_config(dataset, "binary"), seed=0)
    explainer.fit(x_train, y_train)

    x_test, _ = bundle.split("test")
    denied = x_test[explainer.blackbox.predict(x_test) == 0][:150]
    result = explainer.explain(denied)

    catalog_set = build_constraints(bundle.encoder, "binary")
    catalog_rate = catalog_set.satisfaction_rate(denied, result.x_cf)
    print(f"\nvalidity                         : {result.validity_rate:6.1%}")
    print(f"mined-constraint feasibility     : {result.feasibility_rate:6.1%}")
    print(f"hand-written catalog feasibility : {catalog_rate:6.1%}")
    if catalog_rate >= 0.85:
        print("\nThe mined constraints transfer: training against discovered "
              "relations also satisfies the paper's hand-made catalog.")
    else:
        print("\nTraining against mined relations satisfies them almost "
              "perfectly and carries most of the way to the hand-made "
              "catalog — the remaining gap is the human knowledge the "
              "paper's future work wants to close.")


if __name__ == "__main__":
    main()

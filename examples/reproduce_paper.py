"""Reproduce every table and figure of the paper in one run.

Regenerates Tables I-V and Figure 6 at a chosen scale and writes the
rendered artifacts to ``results/<scale>/``.  The ``standard`` scale
(20k-instance cap) is what EXPERIMENTS.md records; ``fast`` finishes in
about a minute.

Run with:  python examples/reproduce_paper.py [fast|standard|smoke|paper]
"""

import pathlib
import sys
import time


from repro.core import FeasibleCFExplainer, paper_config
from repro.experiments import (
    build_figure6,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    build_table5,
    prepare_context,
    run_method,
    TABLE4_METHOD_ORDER,
)

DATASET_LABELS = {
    "adult": "Adult Income dataset",
    "kdd_census": "KDD-Census Income dataset",
    "law_school": "Law School dataset",
}


def main():
    scale = sys.argv[1] if len(sys.argv) > 1 else "fast"
    out_dir = pathlib.Path("results") / scale
    out_dir.mkdir(parents=True, exist_ok=True)
    started = time.time()

    def emit(name, text):
        (out_dir / name).write_text(text + "\n")
        print("\n" + text)

    print(f"=== Reproducing all tables and figures at scale {scale!r} ===")
    emit("table1.txt", build_table1(scale=scale)[0])
    emit("table2.txt", build_table2(n_features=9)[0])
    emit("table3.txt", build_table3()[0])

    for dataset in ("adult", "kdd_census", "law_school"):
        print(f"\n--- Table IV on {dataset} ---")
        context = prepare_context(dataset, scale=scale, seed=0)
        print(f"black-box accuracy: {context.blackbox_accuracy:.3f}, "
              f"explaining {len(context.x_explain)} instances")
        reports = []
        for method in TABLE4_METHOD_ORDER:
            t0 = time.time()
            report = run_method(context, method)
            reports.append(report)
            print(f"  {method:<14} validity={report.validity:6.2f} "
                  f"sparsity={report.sparsity:5.2f} ({time.time() - t0:.1f}s)")
        emit(f"table4_{dataset}.txt",
             build_table4(reports, DATASET_LABELS[dataset])[0])

        if dataset == "adult":
            explainer = FeasibleCFExplainer(
                context.bundle.encoder, constraint_kind="binary",
                config=paper_config("adult", "binary"),
                blackbox=context.blackbox, seed=0)
            explainer.fit(context.x_train, context.y_train)
            batch = explainer.explain(context.x_explain, context.desired)
            emit("table5.txt", build_table5(batch)[0])

        figure = build_figure6(dataset, scale=scale, n_points=300,
                               tsne_iterations=300, context=context)
        emit(f"figure6_{dataset}.txt", figure.render())

    print(f"\nDone in {time.time() - started:.0f}s. "
          f"Artifacts in {out_dir}/")


if __name__ == "__main__":
    main()
